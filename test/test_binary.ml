(* Tests for the ISA, disassembler, VM, binary rewriter and vDSO patching.
   The central property: a rewritten program, run with a hook handler that
   performs the syscall, is observationally identical to the original. *)

module I = Varan_isa.Insn
module D = Varan_isa.Disasm
module Vm = Varan_isa.Vm
module R = Varan_binary.Rewriter
module RC = Varan_binary.Rewrite_cache
module Codegen = Varan_binary.Codegen
module Image = Varan_binary.Image
module Vdso = Varan_binary.Vdso
module Prng = Varan_util.Prng

(* --- encode/decode ------------------------------------------------- *)

let all_example_insns =
  [
    I.Nop; I.Syscall; I.Int3; I.Int 0x80; I.Hook 42;
    I.Mov_imm (3, 123456l); I.Add (1, 2); I.Sub (7, 0); I.Cmp (4, 4);
    I.Add_imm (5, -3); I.Jmp 1000l; I.Jmp (-12l); I.Jmp_short (-128);
    I.Je 127; I.Jne (-1); I.Call 500l; I.Ret; I.Push 6; I.Pop 6;
    I.Load (2, 3); I.Store (3, 2); I.Hlt;
  ]

let test_encode_decode_roundtrip () =
  List.iter
    (fun insn ->
      let b = I.encode insn in
      Alcotest.(check int)
        (Format.asprintf "%a length" I.pp insn)
        (I.length insn) (Bytes.length b);
      match I.decode b 0 with
      | Some (insn', len) ->
        Alcotest.(check bool)
          (Format.asprintf "%a roundtrip" I.pp insn)
          true
          (I.equal insn insn' && len = I.length insn)
      | None -> Alcotest.failf "%s failed to decode" (Format.asprintf "%a" I.pp insn))
    all_example_insns

let test_decode_invalid () =
  Alcotest.(check bool)
    "0xFF invalid" true
    (I.decode (Bytes.of_string "\xFF") 0 = None);
  (* Truncated MOV *)
  Alcotest.(check bool)
    "truncated mov" true
    (I.decode (Bytes.of_string "\xB8\x01") 0 = None)

let test_branch_target () =
  (* jmp +10 at address 100 (5 bytes): target 115. *)
  Alcotest.(check (option int))
    "jmp rel32" (Some 115)
    (I.branch_target ~at:100 (I.Jmp 10l));
  Alcotest.(check (option int))
    "je rel8" (Some 95)
    (I.branch_target ~at:100 (I.Je (-7)));
  Alcotest.(check (option int)) "non-branch" None (I.branch_target ~at:0 I.Nop)

let test_with_target () =
  (match I.with_target ~at:100 (I.Je 0) 400 with
  | None -> ()
  | Some _ -> Alcotest.fail "rel8 overflow should refuse");
  match I.with_target ~at:100 (I.Jmp 0l) 400 with
  | Some (I.Jmp rel) -> Alcotest.(check int32) "rel32 fits" 295l rel
  | _ -> Alcotest.fail "jmp retarget failed"

(* --- disassembler --------------------------------------------------- *)

let test_sweep_skips_data () =
  let code = Bytes.of_string "\x90\xFF\x05\xF4" in
  let items = D.sweep code in
  Alcotest.(check int) "four items" 4 (List.length items);
  let decoded = D.instructions code in
  Alcotest.(check int) "three decoded" 3 (List.length decoded);
  Alcotest.(check (list int))
    "syscall site" [ 2 ] (D.syscall_sites code)

let test_branch_targets_collected () =
  let code = Codegen.loop_with_syscall ~iterations:3 in
  let targets = D.branch_targets code in
  Alcotest.(check bool) "loop head is a target" true (Hashtbl.mem targets 10)

(* --- VM -------------------------------------------------------------- *)

let test_vm_arithmetic () =
  let code =
    Bytes.concat Bytes.empty
      (List.map I.encode
         [ I.Mov_imm (1, 20l); I.Mov_imm (2, 22l); I.Add (1, 2); I.Hlt ])
  in
  let st = Vm.run code ~entry:0 in
  Alcotest.(check int) "r1 = 42" 42 st.Vm.regs.(1)

let test_vm_loop () =
  let code = Codegen.loop_with_syscall ~iterations:5 in
  let st = Vm.run code ~entry:0 in
  Alcotest.(check int) "five syscalls" 5 (List.length (Vm.syscall_trace st));
  Alcotest.(check int) "counter" 5 st.Vm.regs.(1)

let test_vm_call_ret () =
  (* call the function at the end; it sets r3 := 7 and returns. *)
  let code =
    Bytes.concat Bytes.empty
      (List.map I.encode
         [
           I.Call 1l (* skip the hlt: call target = 5+1 = 6 *);
           I.Hlt;
           I.Mov_imm (3, 7l);
           I.Ret;
         ])
  in
  let st = Vm.run code ~entry:0 in
  Alcotest.(check int) "r3 set by callee" 7 st.Vm.regs.(3)

let test_vm_stack_fault () =
  let code = I.encode (I.Pop 0) in
  match Vm.run (Bytes.cat code (I.encode I.Hlt)) ~entry:0 with
  | exception Vm.Fault _ -> ()
  | _ -> Alcotest.fail "expected stack fault"

let run_insns insns =
  let code =
    Bytes.concat Bytes.empty (List.map I.encode (insns @ [ I.Hlt ]))
  in
  Vm.run code ~entry:0

let test_vm_mov_xor_test () =
  let st =
    run_insns
      [ I.Mov_imm (1, 5l); I.Mov (2, 1); I.Xor (1, 1); I.Test (2, 2) ]
  in
  Alcotest.(check int) "mov copied" 5 st.Vm.regs.(2);
  Alcotest.(check int) "xor zeroed" 0 st.Vm.regs.(1);
  Alcotest.(check bool) "test cleared zf (5 land 5 <> 0)" false st.Vm.zf;
  let st = run_insns [ I.Mov_imm (1, 0l); I.Test (1, 1) ] in
  Alcotest.(check bool) "test set zf on zero" true st.Vm.zf

let test_vm_inc_dec () =
  let st = run_insns [ I.Mov_imm (3, 10l); I.Inc 3; I.Inc 3; I.Dec 3 ] in
  Alcotest.(check int) "inc/dec" 11 st.Vm.regs.(3)

let test_vm_signed_branches () =
  (* r1=1, r2=2: jl taken; jg not taken. *)
  let code =
    Bytes.concat Bytes.empty
      (List.map I.encode
         [
           I.Mov_imm (1, 1l);
           I.Mov_imm (2, 2l);
           I.Cmp (1, 2);
           I.Jl 5 (* skip the mov below *);
           I.Mov_imm (7, 111l) (* must be skipped *);
           I.Cmp (2, 1);
           I.Jg 5 (* taken: 2 > 1 *);
           I.Mov_imm (6, 222l) (* must be skipped *);
           I.Hlt;
         ])
  in
  let st = Vm.run code ~entry:0 in
  Alcotest.(check int) "jl skipped the mov" 0 st.Vm.regs.(7);
  Alcotest.(check int) "jg skipped the mov" 0 st.Vm.regs.(6)

let test_new_insn_roundtrips () =
  List.iter
    (fun insn ->
      match I.decode (I.encode insn) 0 with
      | Some (insn', len) ->
        Alcotest.(check bool)
          (Format.asprintf "%a" I.pp insn)
          true
          (I.equal insn insn' && len = I.length insn)
      | None -> Alcotest.failf "decode failed")
    [
      I.Mov (1, 2); I.Xor (3, 4); I.Test (5, 6); I.Inc 7; I.Dec 0;
      I.Jl (-8); I.Jg 127;
    ]

(* --- rewriter -------------------------------------------------------- *)

(* Hooks that implement the monitor side: a hook performs the syscall
   (records it), a trap does the same through the signal path. *)
let monitor_hooks =
  {
    Vm.on_syscall = Vm.record_syscall;
    on_hook = Some (fun _site st -> Vm.record_syscall st);
    on_trap = Some (fun _vec st -> Vm.record_syscall st);
  }


let check_equivalent name code =
  let before = Vm.run ~hooks:monitor_hooks code ~entry:0 in
  let r = R.rewrite code in
  let after = Vm.run ~hooks:monitor_hooks r.R.code ~entry:0 in
  Alcotest.(check bool)
    (name ^ ": same registers")
    true
    (Array.to_list before.Vm.regs = Array.to_list after.Vm.regs);
  Alcotest.(check bool)
    (name ^ ": same syscall trace")
    true
    (Vm.syscall_trace before = Vm.syscall_trace after);
  r

let test_rel8_universal_expansion () =
  (* A conditional branch relocated into a stub must still reach its
     original target even though rel8 no longer fits: layout a syscall
     directly followed by a far-reaching conditional branch. *)
  let insns =
    [
      I.Mov_imm (0, 1l);
      I.Mov_imm (1, 1l);
      I.Mov_imm (2, 1l);
      I.Cmp (1, 2);
      I.Syscall;
      I.Je 5 (* skip the next mov when r1 = r2 (always) *);
      I.Mov_imm (5, 99l);
      I.Hlt;
    ]
  in
  let code = Bytes.concat Bytes.empty (List.map I.encode insns) in
  let before = Vm.run ~hooks:monitor_hooks code ~entry:0 in
  let r = R.rewrite code in
  (* The Je was inside the relocation window, re-emitted in the stub far
     from its target. *)
  Alcotest.(check bool) "je relocated" true (r.R.stats.R.relocated_insns >= 1);
  let after = Vm.run ~hooks:monitor_hooks r.R.code ~entry:0 in
  Alcotest.(check bool) "same registers" true
    (Array.to_list before.Vm.regs = Array.to_list after.Vm.regs);
  Alcotest.(check int) "mov skipped in both" 0 after.Vm.regs.(5)

let test_rewrite_straightline () =
  let code = Codegen.straightline ~syscall_numbers:[ 0; 1; 3 ] in
  let r = check_equivalent "straightline" code in
  Alcotest.(check int) "three sites" 3 r.R.stats.R.total_syscalls;
  Alcotest.(check int) "all jump-dispatched" 3 r.R.stats.R.jump_sites;
  Alcotest.(check int) "no traps" 0 r.R.stats.R.trap_sites

let test_rewrite_no_syscall_instructions_remain () =
  let code = Codegen.straightline ~syscall_numbers:[ 1; 2; 3; 4 ] in
  let r = R.rewrite code in
  Alcotest.(check (list int))
    "no raw syscalls left" [] (D.syscall_sites r.R.code)

let test_rewrite_trap_fallback () =
  let code = Codegen.trap_forcing () in
  let r = check_equivalent "trap fallback" code in
  Alcotest.(check int) "one trap site" 1 r.R.stats.R.trap_sites;
  Alcotest.(check int) "no jump site" 0 r.R.stats.R.jump_sites

let test_rewrite_loop () =
  let code = Codegen.loop_with_syscall ~iterations:7 in
  let r = check_equivalent "loop" code in
  Alcotest.(check int) "one site" 1 r.R.stats.R.total_syscalls

let test_rewrite_preserves_original_length_prefix () =
  let code = Codegen.straightline ~syscall_numbers:[ 1 ] in
  let r = R.rewrite code in
  Alcotest.(check bool)
    "stub appended after original" true
    (Bytes.length r.R.code > Bytes.length code);
  Alcotest.(check int)
    "stub bytes accounted"
    (Bytes.length r.R.code - Bytes.length code)
    r.R.stats.R.stub_bytes

let test_site_at () =
  let code = Codegen.straightline ~syscall_numbers:[ 9; 8 ] in
  let r = R.rewrite code in
  match r.R.sites with
  | [ s1; s2 ] ->
    Alcotest.(check bool) "lookup first" true (R.site_at r.R.sites s1.R.orig_addr = Some s1);
    Alcotest.(check bool) "lookup second" true (R.site_at r.R.sites s2.R.orig_addr = Some s2);
    Alcotest.(check bool) "missing" true (R.site_at r.R.sites 9999 = None)
  | _ -> Alcotest.fail "expected two sites"

(* Property: random programs behave identically after rewriting. *)
let prop_rewrite_equivalence =
  QCheck.Test.make ~name:"rewrite preserves semantics" ~count:200
    QCheck.(pair small_nat (int_bound 1_000_000))
    (fun (size, seed) ->
      let rng = Prng.create seed in
      let code =
        Codegen.random_program rng ~size:(8 + size) ~syscall_share:0.15
      in
      let before = Vm.run ~hooks:monitor_hooks code ~entry:0 in
      let r = R.rewrite code in
      let after = Vm.run ~hooks:monitor_hooks r.R.code ~entry:0 in
      Array.to_list before.Vm.regs = Array.to_list after.Vm.regs
      && Vm.syscall_trace before = Vm.syscall_trace after
      && D.syscall_sites r.R.code = [])

let prop_sites_cover_all_syscalls =
  QCheck.Test.make ~name:"every syscall gets a site" ~count:200
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let code = Codegen.random_program rng ~size:60 ~syscall_share:0.25 in
      let n_sys = List.length (D.syscall_sites code) in
      let r = R.rewrite code in
      r.R.stats.R.total_syscalls = n_sys
      && List.length r.R.sites = n_sys)

(* --- rewrite cache --------------------------------------------------- *)

let test_cache_rebase_identity () =
  let code = Codegen.straightline ~syscall_numbers:[ 1; 2; 3 ] in
  let cache = RC.create () in
  let cold = R.rewrite ~first_site_id:40 code in
  ignore (RC.prepare cache code);
  let hit = RC.prepare cache ~first_site_id:40 code in
  Alcotest.(check bool) "identical code" true (Bytes.equal cold.R.code hit.R.code);
  Alcotest.(check bool) "identical sites" true (cold.R.sites = hit.R.sites);
  Alcotest.(check bool) "identical stats" true (cold.R.stats = hit.R.stats);
  let s = RC.stats cache in
  Alcotest.(check int) "one miss" 1 s.RC.misses;
  Alcotest.(check int) "one hit" 1 s.RC.hits;
  Alcotest.(check int) "one rebase" 1 s.RC.rebases;
  Alcotest.(check int) "one entry" 1 s.RC.entries

let test_cache_rebase_zero_is_identity () =
  (* Rebasing to id 0 must reproduce the relocatable bytes untouched. *)
  let code = Codegen.straightline ~syscall_numbers:[ 7; 8 ] in
  let rt = R.rewrite_relocatable code in
  let r0 = R.rebase rt ~first_site_id:0 in
  Alcotest.(check bool) "bytes equal" true (Bytes.equal rt.R.rt_code r0.R.code);
  Alcotest.(check bool)
    "fresh copy, not an alias" true
    (rt.R.rt_code != r0.R.code)

let test_cache_eviction () =
  let cache = RC.create ~capacity:2 () in
  let imgs =
    List.map
      (fun n -> Codegen.straightline ~syscall_numbers:[ n ])
      [ 1; 2; 3 ]
  in
  List.iter (fun c -> ignore (RC.prepare cache c)) imgs;
  let s = RC.stats cache in
  Alcotest.(check int) "entries capped" 2 s.RC.entries;
  Alcotest.(check int) "one eviction" 1 s.RC.evictions;
  (* The evicted (oldest) image must miss again; the resident ones hit. *)
  ignore (RC.prepare cache (List.hd imgs));
  ignore (RC.prepare cache (List.nth imgs 2));
  let s = RC.stats cache in
  Alcotest.(check int) "evictee re-misses" 4 s.RC.misses;
  Alcotest.(check int) "resident hits" 1 s.RC.hits

(* Property: serving an image from the cache and rebasing it to an
   arbitrary site-id range is indistinguishable from a cold rewrite at
   that range — same bytes, same stats, same trap-site set. *)
let prop_cache_rebase_equals_cold =
  QCheck.Test.make ~name:"cache hit + rebase == cold rewrite" ~count:200
    QCheck.(pair (int_bound 1_000_000) (int_bound 5_000))
    (fun (seed, first_site_id) ->
      let rng = Prng.create seed in
      let code = Codegen.random_program rng ~size:60 ~syscall_share:0.25 in
      let cold = R.rewrite ~first_site_id code in
      let cache = RC.create () in
      ignore (RC.prepare cache code);
      let hit = RC.prepare cache ~first_site_id code in
      let trap_addrs r =
        List.filter_map
          (fun s ->
            if s.R.dispatch = R.Trap then Some s.R.orig_addr else None)
          r.R.sites
      in
      Bytes.equal cold.R.code hit.R.code
      && cold.R.stats = hit.R.stats
      && cold.R.sites = hit.R.sites
      && trap_addrs cold = trap_addrs hit
      && (RC.stats cache).RC.hits = 1
      && (RC.stats cache).RC.misses = 1)

(* --- W^X ------------------------------------------------------------- *)

let test_wx_violation () =
  (match
     Image.make_segment ~name:"bad" ~base:0
       ~perm:{ Image.r = true; w = true; x = true }
       Bytes.empty
   with
  | exception Image.Wx_violation _ -> ()
  | _ -> Alcotest.fail "expected Wx_violation on creation");
  let seg =
    Image.make_segment ~name:"text" ~base:0 ~perm:Image.rx
      (Codegen.straightline ~syscall_numbers:[ 1 ])
  in
  match Image.set_perm seg { Image.r = true; w = true; x = true } with
  | exception Image.Wx_violation _ -> ()
  | _ -> Alcotest.fail "expected Wx_violation on set_perm"

let test_rewrite_segment_respects_wx () =
  let seg =
    Image.make_segment ~name:"text" ~base:0 ~perm:Image.rx
      (Codegen.straightline ~syscall_numbers:[ 1; 2 ])
  in
  let sites, stats = R.rewrite_segment seg in
  Alcotest.(check int) "two sites" 2 (List.length sites);
  Alcotest.(check int) "two jumps" 2 stats.R.jump_sites;
  Alcotest.(check bool) "still executable" true seg.Image.perm.Image.x;
  Alcotest.(check bool) "not writable" false seg.Image.perm.Image.w

(* --- vDSO ------------------------------------------------------------ *)

let test_vdso_build_and_patch () =
  let values =
    [ ("clock_gettime", 111l); ("getcpu", 2l); ("gettimeofday", 333l); ("time", 444l) ]
  in
  let code, symbols = Vdso.build values in
  (* Calling the unpatched function returns its value. *)
  let time_sym = List.find (fun s -> s.Vdso.sym_name = "time") symbols in
  let st = Vm.run code ~entry:time_sym.Vdso.sym_addr in
  Alcotest.(check int) "unpatched returns value" 444 st.Vm.regs.(0);
  (* Patch; calling now triggers the hook. *)
  let p = Vdso.patch code symbols in
  let hook_hits = ref [] in
  let hooks =
    {
      Vm.on_syscall = Vm.record_syscall;
      on_hook =
        Some
          (fun site st ->
            hook_hits := site :: !hook_hits;
            st.Vm.regs.(0) <- 999;
            (* The monitor returns straight to the caller. *)
            st.Vm.pc <- (match st.Vm.stack with [] -> st.Vm.pc | ra :: _ -> ra));
      on_trap = None;
    }
  in
  let st = Vm.run ~hooks p.Vdso.v_code ~entry:time_sym.Vdso.sym_addr in
  Alcotest.(check int) "hooked value" 999 st.Vm.regs.(0);
  Alcotest.(check int) "hook fired once" 1 (List.length !hook_hits);
  (* The trampoline still runs the original implementation. *)
  let tramp = List.assoc "time" p.Vdso.v_trampolines in
  let st = Vm.run ~hooks p.Vdso.v_code ~entry:tramp in
  Alcotest.(check int) "trampoline gives original" 444 st.Vm.regs.(0)

let () =
  Alcotest.run "varan_binary"
    [
      ( "isa",
        [
          Alcotest.test_case "encode/decode roundtrip" `Quick
            test_encode_decode_roundtrip;
          Alcotest.test_case "decode invalid" `Quick test_decode_invalid;
          Alcotest.test_case "branch target" `Quick test_branch_target;
          Alcotest.test_case "with_target" `Quick test_with_target;
        ] );
      ( "disasm",
        [
          Alcotest.test_case "sweep skips data" `Quick test_sweep_skips_data;
          Alcotest.test_case "branch targets" `Quick
            test_branch_targets_collected;
        ] );
      ( "vm",
        [
          Alcotest.test_case "arithmetic" `Quick test_vm_arithmetic;
          Alcotest.test_case "loop" `Quick test_vm_loop;
          Alcotest.test_case "call/ret" `Quick test_vm_call_ret;
          Alcotest.test_case "stack fault" `Quick test_vm_stack_fault;
          Alcotest.test_case "mov/xor/test" `Quick test_vm_mov_xor_test;
          Alcotest.test_case "inc/dec" `Quick test_vm_inc_dec;
          Alcotest.test_case "signed branches" `Quick test_vm_signed_branches;
          Alcotest.test_case "new insn roundtrips" `Quick
            test_new_insn_roundtrips;
        ] );
      ( "rewriter",
        [
          Alcotest.test_case "straightline" `Quick test_rewrite_straightline;
          Alcotest.test_case "no syscalls remain" `Quick
            test_rewrite_no_syscall_instructions_remain;
          Alcotest.test_case "trap fallback" `Quick test_rewrite_trap_fallback;
          Alcotest.test_case "loop" `Quick test_rewrite_loop;
          Alcotest.test_case "stub accounting" `Quick
            test_rewrite_preserves_original_length_prefix;
          Alcotest.test_case "site lookup" `Quick test_site_at;
          Alcotest.test_case "rel8 universal expansion" `Quick
            test_rel8_universal_expansion;
          QCheck_alcotest.to_alcotest prop_rewrite_equivalence;
          QCheck_alcotest.to_alcotest prop_sites_cover_all_syscalls;
        ] );
      ( "rewrite-cache",
        [
          Alcotest.test_case "rebase identity" `Quick
            test_cache_rebase_identity;
          Alcotest.test_case "rebase to 0 is identity" `Quick
            test_cache_rebase_zero_is_identity;
          Alcotest.test_case "FIFO eviction" `Quick test_cache_eviction;
          QCheck_alcotest.to_alcotest prop_cache_rebase_equals_cold;
        ] );
      ( "image",
        [
          Alcotest.test_case "W^X violation" `Quick test_wx_violation;
          Alcotest.test_case "rewrite_segment W^X" `Quick
            test_rewrite_segment_respects_wx;
        ] );
      ( "vdso",
        [ Alcotest.test_case "build and patch" `Quick test_vdso_build_and_patch ] );
    ]

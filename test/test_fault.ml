(* Torture tests over NVX failover and replay: deterministic fault plans
   (crashes, stalls, ring pressure, signal bursts, fork splices) injected
   into random syscall programs, with the trace-invariant oracle attached
   to every ring. Each case asserts the full harness check: surviving
   variants observably equal the native run, every crash was planned,
   the oracle report is clean, and a live leader holds the role. *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Ring = Varan_ringbuf.Ring
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module RR = Varan_nvx.Record_replay
module Fault = Varan_fault.Plan
module Oracle = Varan_trace.Oracle
module Lifecycle = Varan_nvx.Lifecycle
module Prng = Varan_util.Prng
module H = Varan_torture.Harness
module P = Gen_programs

let check_case_exn label case out =
  match H.check case out with
  | [] -> ()
  | fails ->
    Alcotest.failf "%s: %s\n  %s" label
      (H.describe_case case)
      (String.concat "\n  " fails)

(* ------------------------------------------------------------------ *)
(* Directed scenarios                                                  *)
(* ------------------------------------------------------------------ *)

let directed_case ?lifecycle ?net ~seed ~followers ~plan () =
  { H.seed; followers; prog_len = 0; ring_size = 8; plan; lifecycle; net }

(* A workload whose every phase publishes events, including >48-byte
   payloads that travel through the shared-memory pool. *)
let payload_ops n =
  P.Open "/dev/zero"
  :: List.concat
       (List.init n (fun i ->
            [
              P.Read_newest 600;
              P.Write_newest 300;
              P.Stat "/dev/null";
              P.Create_tmp (i mod 4);
              P.Getuid;
            ]))

let test_leader_crash_during_publish () =
  let case =
    directed_case ~seed:101 ~followers:2
      ~plan:[ Fault.Crash_variant { idx = 0; at_seq = 7 } ] ()
  in
  let out = H.run_ops case (payload_ops 8) in
  check_case_exn "leader crash" case out;
  Alcotest.(check (list int)) "leader crashed" [ 0 ] (List.map fst out.H.crashes);
  Alcotest.(check bool) "a follower was promoted" true
    (out.H.report.Oracle.promotions >= 1);
  Alcotest.(check bool) "new leader is alive" true
    (out.H.leader_idx <> 0 && out.H.alive.(out.H.leader_idx))

let test_follower_stall_at_full_ring () =
  let case =
    directed_case ~seed:102 ~followers:1
      ~plan:
        [
          Fault.Ring_pressure { shrink_to = 1 };
          Fault.Stall_follower { idx = 1; at_seq = 3; delay = 30_000 };
        ]
      ()
  in
  let out = H.run_ops case (payload_ops 6) in
  check_case_exn "stall at full ring" case out;
  let producer_stalls =
    Array.fold_left
      (fun acc (r : Ring.stats) -> acc + r.Ring.producer_stalls)
      0 out.H.stats.Nvx.rings
  in
  Alcotest.(check bool) "single-slot ring stalled the leader" true
    (producer_stalls > 0)

let test_fork_then_crash () =
  let ops =
    P.splice_forks (Prng.create 7) (List.map P.sanitize_for_fork (payload_ops 6))
      ~at:[ 4 ]
  in
  let case =
    directed_case ~seed:103 ~followers:2
      ~plan:[ Fault.Crash_variant { idx = 0; at_seq = 15 } ] ()
  in
  let out = H.run_ops case ops in
  check_case_exn "fork then crash" case out;
  Alcotest.(check bool) "fork created a second tuple" true
    (out.H.report.Oracle.tuples >= 2);
  Alcotest.(check (list int)) "leader crashed" [ 0 ]
    (List.map fst out.H.crashes)

(* Regression: with the leader and then every follower crashing in index
   order, each election must skip variants that died while a previous
   failover was still in flight — a stale decision would hand the leader
   role to a dead variant and strand the survivor. *)
let test_cascading_crashes_in_index_order () =
  let case =
    directed_case ~seed:104 ~followers:3
      ~plan:
        [
          Fault.Crash_variant { idx = 0; at_seq = 4 };
          Fault.Crash_variant { idx = 1; at_seq = 6 };
          Fault.Crash_variant { idx = 2; at_seq = 8 };
        ]
      ()
  in
  let out = H.run_ops case (payload_ops 8) in
  check_case_exn "cascading crashes" case out;
  Alcotest.(check int) "last variant leads" 3 out.H.leader_idx;
  Alcotest.(check bool) "and is alive" true out.H.alive.(3);
  Alcotest.(check int) "three crashes" 3 (List.length out.H.crashes)

(* Every follower crashes, in index order, while the leader survives:
   failover must never fire, and the leader must keep running to the end
   with its consumers torn down cleanly. *)
let test_all_followers_crash () =
  let case =
    directed_case ~seed:105 ~followers:3
      ~plan:
        [
          Fault.Crash_variant { idx = 1; at_seq = 3 };
          Fault.Crash_variant { idx = 2; at_seq = 5 };
          Fault.Crash_variant { idx = 3; at_seq = 7 };
        ]
      ()
  in
  let out = H.run_ops case (payload_ops 8) in
  check_case_exn "all followers crash" case out;
  Alcotest.(check int) "leader unchanged" 0 out.H.leader_idx;
  Alcotest.(check int) "no promotions" 0 out.H.report.Oracle.promotions

(* Figure 5's "pure interception" configuration: with zero followers the
   leader records nothing, so the stream machinery must cost nothing —
   no producer stalls, and no publish-side wakeups (nobody is ever
   parked on the ring). *)
let test_zero_followers_pay_no_streaming_costs () =
  let case = directed_case ~seed:107 ~followers:0 ~plan:[] () in
  let out = H.run_ops case (payload_ops 8) in
  check_case_exn "zero followers" case out;
  Array.iter
    (fun (r : Ring.stats) ->
      Alcotest.(check int) "no producer stalls" 0 r.Ring.producer_stalls;
      Alcotest.(check int) "no consumer wakeups" 0 r.Ring.publish_wakeups;
      Alcotest.(check int) "nothing streamed" 0 r.Ring.publishes)
    out.H.stats.Nvx.rings

(* Negative control: a deliberate payload-reference leak must be caught,
   proving the oracle's pool-balance invariant is not vacuous. *)
let test_drop_payload_negative_control () =
  let case =
    directed_case ~seed:106 ~followers:1
      ~plan:[ Fault.Drop_payload_grant { idx = 1; at_seq = 2 } ] ()
  in
  let out = H.run_ops case (payload_ops 4) in
  Alcotest.(check bool) "oracle flags the leak" false (Oracle.ok out.H.report);
  Alcotest.(check bool) "as an outstanding payload" true
    (out.H.report.Oracle.outstanding_payloads > 0)

(* ------------------------------------------------------------------ *)
(* Follower lifecycle: quarantine, rejoin, degradation                 *)
(* ------------------------------------------------------------------ *)

let lc = H.lifecycle_policy

let check_lifecycle_exn label case out =
  check_case_exn label case out;
  match H.check_lifecycle case out with
  | [] -> ()
  | fails ->
    Alcotest.failf "%s: %s\n  %s" label
      (H.describe_case case)
      (String.concat "\n  " fails)

let lifecycle_of out =
  match out.H.lifecycle with
  | Some r -> r
  | None -> Alcotest.fail "no lifecycle report"

(* Satellite regression pinning [Stall_follower] semantics: the slot
   triggers on the first pre-consume position >= at_seq and burns — one
   armed stall is exactly one sleep, never one per event past at_seq. *)
let test_stall_fires_once () =
  let case =
    directed_case ~seed:110 ~followers:1
      ~plan:[ Fault.Stall_follower { idx = 1; at_seq = 3; delay = 30_000 } ]
      ()
  in
  let out = H.run_ops case (payload_ops 6) in
  check_case_exn "stall fires once" case out;
  Alcotest.(check int) "exactly one stall hit the victim" 1
    out.H.stats.Nvx.variants.(1).Nvx.vs_injected_stalls;
  Alcotest.(check int) "none hit the leader" 0
    out.H.stats.Nvx.variants.(0).Nvx.vs_injected_stalls

(* A follower sleeping an order of magnitude past the stall timeout is
   quarantined by the watchdog, respawned, replays the tape and splices
   back into the live ring — ending healthy with the native digest,
   having never blocked the leader on its retired consumers. *)
let test_quarantine_then_rejoin () =
  let case =
    directed_case ~lifecycle:lc ~seed:111 ~followers:2
      ~plan:[ Fault.Stall_follower { idx = 1; at_seq = 4; delay = 2_000_000 } ]
      ()
  in
  let out = H.run_ops case (payload_ops 10) in
  check_lifecycle_exn "quarantine then rejoin" case out;
  let r = lifecycle_of out in
  Alcotest.(check bool) "victim was quarantined" true
    (r.Lifecycle.quarantines >= 1);
  Alcotest.(check bool) "and respawned" true (r.Lifecycle.respawns >= 1);
  Alcotest.(check bool) "and rejoined" true (r.Lifecycle.rejoins >= 1);
  Alcotest.(check int) "one incarnation consumed" 1
    out.H.stats.Nvx.variants.(1).Nvx.vs_incarnation;
  Alcotest.(check string) "victim digest equals native" out.H.native
    out.H.digests.(1);
  Alcotest.(check int) "leader never gated on the quarantined consumer" 0
    out.H.report.Oracle.gate_waits_on_quarantined

(* Satellite regression for the spawn fast path: every variant in the
   harness shares the default code profile, so the session rewrites its
   image cold exactly once — the other replicas at startup and the
   respawned incarnation (which shares the zygote's unchanged pristine
   image) are all content-addressed cache hits served by rebase. *)
let test_respawn_uses_rewrite_cache () =
  let module RC = Varan_binary.Rewrite_cache in
  let case =
    directed_case ~lifecycle:lc ~seed:111 ~followers:2
      ~plan:[ Fault.Stall_follower { idx = 1; at_seq = 4; delay = 2_000_000 } ]
      ()
  in
  let out = H.run_ops case (payload_ops 10) in
  check_lifecycle_exn "respawn fast path" case out;
  Alcotest.(check int) "one respawn happened" 1
    out.H.stats.Nvx.variants.(1).Nvx.vs_incarnation;
  let rc = out.H.stats.Nvx.rewrite_cache in
  Alcotest.(check int) "exactly one cold rewrite" 1 rc.RC.misses;
  Alcotest.(check int) "every other launch hit the cache" 3 rc.RC.hits;
  Alcotest.(check int) "hits are served by rebase" 3 rc.RC.rebases;
  (* The victim prepared its image twice (launch + respawn), the leader
     and the untouched follower once each — and every preparation's
     wall-clock latency was recorded. *)
  Array.iteri
    (fun i vs ->
      Alcotest.(check int)
        (Printf.sprintf "variant %d image preparations" i)
        (if i = 1 then 2 else 1)
        vs.Nvx.vs_spawn_preps;
      Alcotest.(check bool)
        (Printf.sprintf "variant %d spawn latency recorded" i)
        true (vs.Nvx.vs_spawn_ns > 0.))
    out.H.stats.Nvx.variants

(* Two stalls on the same follower with a respawn budget of one: the
   second incarnation trips the watchdog again and the follower is
   declared dead after exactly max_restarts backed-off attempts, while
   the untouched follower finishes with the native digest. *)
let test_dead_after_restart_budget () =
  let policy = { lc with Lifecycle.max_restarts = 1 } in
  let case =
    directed_case ~lifecycle:policy ~seed:112 ~followers:2
      ~plan:
        [
          Fault.Stall_follower { idx = 1; at_seq = 3; delay = 2_000_000 };
          Fault.Stall_follower { idx = 1; at_seq = 9; delay = 2_000_000 };
        ]
      ()
  in
  let out = H.run_ops case (payload_ops 10) in
  check_lifecycle_exn "dead after budget" case out;
  let r = lifecycle_of out in
  let fr1 =
    List.find (fun fr -> fr.Lifecycle.fr_idx = 1) r.Lifecycle.followers
  in
  Alcotest.(check bool) "victim is dead" true
    (fr1.Lifecycle.fr_state = Lifecycle.Dead);
  Alcotest.(check int) "after exactly max_restarts respawns" 1
    fr1.Lifecycle.fr_restarts;
  Alcotest.(check string) "sibling digest equals native" out.H.native
    out.H.digests.(2);
  Alcotest.(check (option string)) "session not degraded" None out.H.degraded

(* The flight recorder's contract: when an armed session kills a
   follower (quarantine watchdog, budget exhausted), a post-mortem
   bundle lands on disk carrying the recent-event window, the full
   lifecycle transition history and the newest checkpoint position —
   enough to localize the failure without rerunning the workload. *)
let test_quarantine_kill_dumps_postmortem () =
  let module Flight = Varan_obs.Flight in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "varan-pm-test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Flight.dump_enabled := true;
  Flight.dump_dir := dir;
  Fun.protect
    ~finally:(fun () ->
      Flight.dump_enabled := false;
      Flight.dump_dir := ".")
    (fun () ->
      (* Budget of one + two long stalls + checkpointing: the victim is
         quarantined, respawns from a checkpoint, stalls again and dies
         — the death fires the dump with a checkpoint seq on record. *)
      let policy =
        { lc with Lifecycle.max_restarts = 1;
                  Lifecycle.checkpoint_interval = 20_000 }
      in
      let case =
        directed_case ~lifecycle:policy ~seed:112 ~followers:2
          ~plan:
            [
              Fault.Stall_follower { idx = 1; at_seq = 3; delay = 2_000_000 };
              Fault.Stall_follower { idx = 1; at_seq = 9; delay = 2_000_000 };
            ]
          ()
      in
      let out = H.run_ops case (payload_ops 10) in
      check_lifecycle_exn "quarantine kill" case out;
      let bundle =
        match !Flight.last_dump with
        | Some p -> p
        | None -> Alcotest.fail "no post-mortem bundle was written"
      in
      Alcotest.(check bool) "bundle is in the armed directory" true
        (Filename.dirname bundle = dir);
      let ic = open_in bundle in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let contains ~sub s =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      (* The recent-event window captured both watchdog verdicts... *)
      Alcotest.(check bool) "events include the quarantine" true
        (contains ~sub:"lifecycle.quarantine" body);
      (* ...the transition history shows the full descent... *)
      Alcotest.(check bool) "transition into Quarantined recorded" true
        (contains ~sub:"\"to\": \"quarantined\"" body);
      Alcotest.(check bool) "transition into Dead recorded" true
        (contains ~sub:"\"to\": \"dead\"" body);
      (* ...and the newest-at-dump-time checkpoint position is on
         record (the session keeps checkpointing after the dump, so the
         recorder's final seq may be newer still). *)
      let bundle_seq =
        let key = "\"checkpoint_seq\": " in
        let rec find i =
          if i + String.length key > String.length body then
            Alcotest.fail "bundle has no checkpoint_seq field"
          else if String.sub body i (String.length key) = key then begin
            let j = ref (i + String.length key) in
            let start = !j in
            while !j < String.length body
                  && (body.[!j] = '-' || (body.[!j] >= '0' && body.[!j] <= '9'))
            do
              incr j
            done;
            int_of_string (String.sub body start (!j - start))
          end
          else find (i + 1)
        in
        find 0
      in
      Alcotest.(check bool) "bundle noted a checkpoint" true (bundle_seq >= 0);
      let fl = Nvx.flight out.H.session in
      Alcotest.(check bool) "recorder's final seq is no older" true
        (Flight.checkpoint_seq fl >= bundle_seq);
      (* The in-memory recorder agrees with what was serialized. *)
      Alcotest.(check bool) "recorder kept a transition history" true
        (List.length (Flight.transitions fl) >= 2);
      Alcotest.(check bool) "recorder kept recent events" true
        (Flight.entries fl <> []))

(* Satellite: losing every follower degrades the session to native-speed
   leader-only execution with a reported reason — never an escaping
   exception. *)
let test_degrade_all_followers_dead () =
  let case =
    directed_case ~seed:113 ~followers:1
      ~plan:[ Fault.Crash_variant { idx = 1; at_seq = 3 } ]
      ()
  in
  let out = H.run_ops case (payload_ops 6) in
  check_case_exn "all followers dead" case out;
  Alcotest.(check (option string)) "degraded with reason"
    (Some "all followers dead") out.H.degraded;
  Alcotest.(check bool) "leader finished" true out.H.alive.(0);
  Alcotest.(check string) "leader digest equals native" out.H.native
    out.H.digests.(0)

(* Satellite: the leader crashing with no electable candidate left must
   also surface as degradation, not a Divergence_kill escaping the
   engine. *)
let test_degrade_no_leader_remains () =
  let case =
    directed_case ~seed:114 ~followers:1
      ~plan:
        [
          Fault.Crash_variant { idx = 1; at_seq = 3 };
          Fault.Crash_variant { idx = 0; at_seq = 6 };
        ]
      ()
  in
  let out = H.run_ops case (payload_ops 6) in
  check_case_exn "no leader remains" case out;
  Alcotest.(check (option string)) "degraded with reason"
    (Some "no leader remains") out.H.degraded;
  Alcotest.(check bool) "nobody survived" false (Array.exists Fun.id out.H.alive)

(* The 200-seed lifecycle sweep: follower-only stalls past the watchdog
   timeout plus occasional follower crashes. Every quarantined follower
   either rejoins with a digest identical to native or dies after
   exactly its respawn budget, and the leader's gate never waits on a
   quarantined consumer (check_lifecycle enforces all of it per seed). *)
let lifecycle_base_seed = 0xFACE
let lifecycle_sweep_cases = 200

let test_lifecycle_sweep () =
  let quarantines = ref 0 and rejoins = ref 0 and deaths = ref 0 in
  for i = 0 to lifecycle_sweep_cases - 1 do
    let seed = lifecycle_base_seed + i in
    let case, out, fails = H.run_lifecycle_seed seed in
    (match fails with
    | [] -> ()
    | fs ->
      Alcotest.failf
        "lifecycle seed %d failed (reproduce: varan torture --lifecycle \
         --seed %d)\n\
        \  %s\n\
        \  %s" seed seed (H.describe_case case)
        (String.concat "\n  " fs));
    match out.H.lifecycle with
    | Some r ->
      quarantines := !quarantines + r.Lifecycle.quarantines;
      rejoins := !rejoins + r.Lifecycle.rejoins;
      deaths := !deaths + r.Lifecycle.deaths
    | None -> ()
  done;
  (* The sweep must actually exercise the recovery machinery. *)
  Alcotest.(check bool) "sweep quarantined followers" true (!quarantines > 0);
  Alcotest.(check bool) "sweep rejoined followers" true (!rejoins > 0);
  ignore !deaths

(* ------------------------------------------------------------------ *)
(* Checkpoint/restore fast rejoin                                      *)
(* ------------------------------------------------------------------ *)

module CK = Varan_nvx.Checkpoint
module Tape = Varan_nvx.Tape

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* A workload with compute phases long enough that the watchdog's armed
   checkpoints land at op boundaries well before the injected stalls —
   every respawn then has a snapshot to restore. *)
let compute_heavy_ops n =
  P.Open "/dev/zero"
  :: List.concat
       (List.init n (fun i ->
            [
              P.Compute 20_000;
              P.Read_newest 600;
              P.Write_newest 300;
              P.Create_tmp (i mod 4);
              P.Getuid;
            ]))

let ck_policy interval = { lc with Lifecycle.checkpoint_interval = interval }

(* Satellite regression mirroring the rewrite cache's "1 cold rewrite +
   N rebases": with checkpointing on, each of the victim's two respawns
   restores a checkpoint instead of replaying the whole tape, and the
   combined delta stays a fraction of two full replays. *)
let test_respawn_reuses_checkpoints () =
  let case =
    directed_case
      ~lifecycle:(ck_policy 20_000)
      ~seed:115 ~followers:2
      ~plan:
        [
          Fault.Stall_follower { idx = 1; at_seq = 8; delay = 2_000_000 };
          Fault.Stall_follower { idx = 1; at_seq = 18; delay = 2_000_000 };
        ]
      ()
  in
  let out = H.run_ops case (compute_heavy_ops 16) in
  check_lifecycle_exn "checkpointed respawns" case out;
  let r = lifecycle_of out in
  Alcotest.(check int) "two respawns" 2
    out.H.stats.Nvx.variants.(1).Nvx.vs_incarnation;
  (* A restore landing exactly on the splice head has no catch-up phase
     to complete, so it shows up as a restore without a counted rejoin —
     at least one of the two respawns replays a real delta. *)
  Alcotest.(check bool) "at least one counted rejoin" true
    (r.Lifecycle.rejoins >= 1);
  let fr1 =
    List.find (fun fr -> fr.Lifecycle.fr_idx = 1) r.Lifecycle.followers
  in
  Alcotest.(check bool) "victim ends healthy" true
    (fr1.Lifecycle.fr_state = Lifecycle.Healthy);
  Alcotest.(check int) "after both restarts" 2 fr1.Lifecycle.fr_restarts;
  let ck = out.H.stats.Nvx.checkpoints in
  Alcotest.(check bool) "checkpoints were taken" true (ck.CK.taken > 0);
  Alcotest.(check int) "every respawn restored a checkpoint" 2 ck.CK.restores;
  let tape_len =
    match Nvx.tuple_tape out.H.session 0 with
    | Some tape -> Tape.length tape
    | None -> Alcotest.fail "no tape"
  in
  (* Two full-tape replays would cost ~2*tape_len delta events; the
     checkpointed rejoins must replay strictly less than one tape's
     worth combined. *)
  Alcotest.(check bool)
    (Printf.sprintf "delta %d bounded by tape %d" ck.CK.delta_events tape_len)
    true
    (ck.CK.delta_events < tape_len);
  Alcotest.(check string) "victim digest equals native" out.H.native
    out.H.digests.(1)

(* Satellite edge: a session whose checkpoint interval never elapses
   takes no snapshots, and every rejoin falls back to the full-tape
   replay — bit-identical to the pre-checkpoint behaviour. *)
let test_zero_checkpoint_full_replay () =
  List.iter
    (fun interval ->
      let case =
        directed_case
          ~lifecycle:(ck_policy interval)
          ~seed:116 ~followers:2
          ~plan:
            [ Fault.Stall_follower { idx = 1; at_seq = 6; delay = 2_000_000 } ]
          ()
      in
      let out = H.run_ops case (payload_ops 10) in
      check_lifecycle_exn "zero-checkpoint fallback" case out;
      let r = lifecycle_of out in
      Alcotest.(check bool) "the victim rejoined" true
        (r.Lifecycle.rejoins >= 1);
      let ck = out.H.stats.Nvx.checkpoints in
      Alcotest.(check int) "no checkpoints taken" 0 ck.CK.taken;
      Alcotest.(check int) "no restores" 0 ck.CK.restores;
      Alcotest.(check string) "victim digest equals native" out.H.native
        out.H.digests.(1))
    [ 0; (* disabled *) 100_000_000 (* never elapses *) ]

(* Satellite edges on the retention window: a time-travel request below
   the oldest retained segment fails cleanly (no exception), in-range
   requests are served, out-of-range ones are clean errors too. *)
let test_time_travel_retention_edges () =
  let case =
    directed_case
      ~lifecycle:(ck_policy 20_000)
      ~seed:117 ~followers:1
      ~plan:[ Fault.Stall_follower { idx = 1; at_seq = 10; delay = 2_000_000 } ]
      ()
  in
  let out = H.run_ops case (compute_heavy_ops 8) in
  check_lifecycle_exn "time travel session" case out;
  let session = out.H.session in
  let tape =
    match Nvx.tuple_tape session 0 with
    | Some t -> t
    | None -> Alcotest.fail "no tape"
  in
  let len = Tape.length tape in
  (* In range: both a cold start and (once checkpoints exist) a restore. *)
  (match RR.time_travel session ~at:0 with
  | Ok tt ->
    Alcotest.(check int) "seq 0 needs no delta" 0 (List.length tt.RR.tt_delta)
  | Error e -> Alcotest.failf "seq 0 must be reachable: %s" e);
  (match RR.time_travel session ~at:len with
  | Ok tt -> Alcotest.(check int) "tape head reachable" len tt.RR.tt_at
  | Error e -> Alcotest.failf "tape head must be reachable: %s" e);
  (* Out of range: clean errors, never exceptions. *)
  (match RR.time_travel session ~at:(len + 1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "past the tape head must be an error");
  (match RR.time_travel session ~at:(-1) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative sequence must be an error");
  (* Age the tape past its first segments: the same object the session
     replays from, so time travel sees the truncation immediately. *)
  for i = len to 699 do
    Tape.append tape
      (Varan_ringbuf.Event.make ~clock:(i + 1) 42)
      ~out:None
  done;
  Tape.retire tape ~keep_from:512;
  Alcotest.(check int) "tape aged" 512 (Tape.base tape);
  (match RR.time_travel session ~at:100 with
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "names the retention cut (%s)" e)
      true
      (contains ~sub:"retained" e)
  | Ok _ -> Alcotest.fail "below the retained window must be an error");
  (* Above the cut but with every checkpoint below it, a cold start
     would also have to cross the truncation — still a clean error. *)
  (match RR.time_travel session ~at:600 with
  | Error _ -> ()
  | Ok _ ->
    Alcotest.fail "no checkpoint covers the retained window: must error");
  (* A checkpoint inside the retained window makes the same position
     servable again: restore above the cut, replay only the delta. *)
  let store = Nvx.checkpoint_store session in
  (match CK.nearest_any store ~seq:len with
  | None -> Alcotest.fail "the session took no checkpoint to clone"
  | Some cp ->
    CK.store store { cp with CK.cp_seq = 540; cp_clock = 540 };
    (match RR.time_travel session ~at:600 with
    | Ok tt ->
      (match tt.RR.tt_checkpoint with
      | Some c ->
        Alcotest.(check int) "restores the in-window checkpoint" 540
          c.CK.cp_seq
      | None -> Alcotest.fail "expected a checkpoint restore");
      Alcotest.(check int) "delta covers only [540, 600)" 60
        (List.length tt.RR.tt_delta)
    | Error e -> Alcotest.failf "in-window checkpoint must serve: %s" e))

(* The 200-seed checkpoint property sweep (satellite 1): random lifecycle
   cases with random checkpoint intervals and kill points; every seed
   must pass the full lifecycle verdicts (settled followers end on the
   native digest — whether they rejoined by checkpoint restore or by
   full replay), and every tenth seed is re-run with checkpointing
   disabled to pin checkpoint-restore-then-delta-replay == full-tape
   replay == native. *)
let checkpoint_base_seed = 0xCE5A
let checkpoint_sweep_cases = 200

let test_checkpoint_sweep () =
  let taken = ref 0 and restores = ref 0 and deltas = ref 0 in
  for i = 0 to checkpoint_sweep_cases - 1 do
    let seed = checkpoint_base_seed + i in
    let rng = Prng.create (seed lxor 0xC4EC4) in
    let interval = 10_000 + Prng.int rng 190_000 in
    let base_case = H.gen_lifecycle_case seed in
    let case =
      { base_case with H.lifecycle = Some (ck_policy interval) }
    in
    let out = H.run_case case in
    (match H.check case out @ H.check_lifecycle case out with
    | [] -> ()
    | fs ->
      Alcotest.failf
        "checkpoint seed %d (interval %d) failed (reproduce: varan torture \
         --lifecycle --checkpoint-interval %d --seed %d)\n\
        \  %s\n\
        \  %s" seed interval interval seed (H.describe_case case)
        (String.concat "\n  " fs));
    let ck = out.H.stats.Nvx.checkpoints in
    taken := !taken + ck.CK.taken;
    restores := !restores + ck.CK.restores;
    deltas := !deltas + ck.CK.delta_events;
    (* Digest tri-equality against the checkpoint-free twin. *)
    if i mod 10 = 0 then begin
      let twin = { base_case with H.lifecycle = Some (ck_policy 0) } in
      let tout = H.run_case twin in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: native digest agrees across twins" seed)
        tout.H.native out.H.native;
      Array.iteri
        (fun v d ->
          if out.H.alive.(v) && tout.H.alive.(v) then
            Alcotest.(check string)
              (Printf.sprintf
                 "seed %d variant %d: checkpointed rejoin == full replay" seed
                 v)
              tout.H.digests.(v) d)
        out.H.digests
    end
  done;
  (* The sweep must actually exercise the restore machinery. *)
  Alcotest.(check bool) "sweep took checkpoints" true (!taken > 0);
  Alcotest.(check bool) "sweep restored checkpoints" true (!restores > 0);
  Alcotest.(check bool) "restores replayed bounded deltas" true (!deltas >= 0)

(* ------------------------------------------------------------------ *)
(* The randomized torture sweep                                        *)
(* ------------------------------------------------------------------ *)

(* 200 cases, every one derived from [base_seed + i] alone — any failure
   reproduces with `varan torture --seed N`. *)
let base_seed = 0xBEEF
let sweep_cases = 200

let test_torture_sweep () =
  let scenario_coverage = Hashtbl.create 4 in
  for i = 0 to sweep_cases - 1 do
    let seed = base_seed + i in
    let case, out, fails = H.run_seed seed in
    (match fails with
    | [] -> ()
    | fs ->
      Alcotest.failf
        "torture seed %d failed (reproduce: varan torture --seed %d)\n\
        \  %s\n\
        \  %s" seed seed (H.describe_case case)
        (String.concat "\n  " fs));
    List.iter
      (fun inj ->
        let key =
          match inj with
          | Fault.Crash_variant { idx = 0; _ } -> "leader-crash"
          | Fault.Crash_variant _ -> "follower-crash"
          | Fault.Stall_follower _ -> "stall"
          | Fault.Ring_pressure _ -> "ring-pressure"
          | Fault.Signal_burst _ -> "signal-burst"
          | Fault.Fork_at _ -> "fork"
          | Fault.Drop_payload_grant _ -> "drop"
          | Fault.Link_partition _ | Fault.Link_delay _ | Fault.Link_reorder _
          | Fault.Link_drop _ | Fault.Link_dup _ ->
            (* link faults only appear in --net cases, generated elsewhere *)
            "link"
        in
        Hashtbl.replace scenario_coverage key ())
      case.H.plan;
    ignore out
  done;
  (* The sweep must actually exercise the interesting machinery. *)
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep covered %s" key)
        true
        (Hashtbl.mem scenario_coverage key))
    [
      "leader-crash"; "follower-crash"; "stall"; "ring-pressure";
      "signal-burst"; "fork";
    ]

(* ------------------------------------------------------------------ *)
(* Sharded-pool sweep (per-shard digest isolation)                     *)
(* ------------------------------------------------------------------ *)

(* 200 seeds of 2–4 co-resident shards — one kernel, one shared zygote,
   one shared rewrite cache — each shard running its own sanitized
   program. Every shard's every variant must reproduce that shard's
   solo native digest, and the pool must have spawned everything
   through the one zygote. Reproduce failures with
   `varan torture --shards 0 --seed N`. *)
let shard_sweep_cases = 200

let test_shard_sweep () =
  let shards_seen = Hashtbl.create 4 in
  for i = 0 to shard_sweep_cases - 1 do
    let seed = base_seed + i in
    let sc, _out, fails = H.run_shard_seed seed in
    Hashtbl.replace shards_seen sc.H.sc_shards ();
    match fails with
    | [] -> ()
    | fs ->
      Alcotest.failf
        "shard seed %d failed (reproduce: varan torture --shards 0 --seed \
         %d)\n\
        \  %s\n\
        \  %s" seed seed
        (H.describe_shard_case sc)
        (String.concat "\n  " fs)
  done;
  (* The sweep must reach the widest pool it generates. *)
  Alcotest.(check bool) "sweep ran 4-shard cases" true
    (Hashtbl.mem shards_seen 4)

(* ------------------------------------------------------------------ *)
(* Contended-futex sweep (per-tid lanes, lock-order replay)            *)
(* ------------------------------------------------------------------ *)

(* 200 cases of multi-threaded variants (4–64 threads) hammering shared
   futex words: every alive follower must reproduce the leader's global
   lock-acquisition order digest-for-digest, with everything else
   replaying concurrently through the per-tid lanes. Reproduce failures
   with `varan torture --futex --seed N`. *)
let futex_sweep_cases = 200

let test_futex_sweep () =
  let threads_seen = Hashtbl.create 4 in
  for i = 0 to futex_sweep_cases - 1 do
    let seed = base_seed + i in
    let fc, _out, fails = H.run_futex_seed seed in
    Hashtbl.replace threads_seen fc.H.f_threads ();
    match fails with
    | [] -> ()
    | fs ->
      Alcotest.failf
        "futex seed %d failed (reproduce: varan torture --futex --seed %d)\n\
        \  %s\n\
        \  %s" seed seed
        (H.describe_futex_case fc)
        (String.concat "\n  " fs)
  done;
  (* The sweep must reach the lane-stress scale. *)
  Alcotest.(check bool) "sweep ran 64-thread cases" true
    (Hashtbl.mem threads_seen 64)

(* Directed: the leader of a 64-thread session crashes mid-stream; a
   follower promotes and keeps publishing, and every survivor ends with
   the same lock-order digest. *)
let test_futex_leader_crash_promotes () =
  let fc =
    {
      H.f_seed = 0x64F07;
      f_threads = 64;
      f_locks = 8;
      f_rounds = 6;
      f_followers = 2;
      f_ring_size = 16;
      f_plan = [];
    }
  in
  let out = H.run_futex_case ~leader_crash_at:150 fc in
  (match H.check_futex ~planned_leader_crash:true fc out with
  | [] -> ()
  | fs -> Alcotest.failf "directed futex promotion:\n  %s"
            (String.concat "\n  " fs));
  Alcotest.(check bool) "old leader dead" false out.H.fo_alive.(0);
  Alcotest.(check bool) "a follower leads" true (out.H.fo_leader_idx <> 0);
  Alcotest.(check bool)
    "survivors share the new leader's lock order" true
    (out.H.fo_digests.(1) = out.H.fo_digests.(2))

(* The catalog's 64-thread grid runs digest-clean under a full NVX
   session: no crashes, no degradation, every thread finished its
   rounds. *)
let test_thread_grid_64_workload () =
  let w = Varan_workloads.Catalog.thread_grid_64 in
  let eng = E.create () in
  let k = K.create ~seed:7 eng in
  let variants =
    List.init 3 (fun i ->
        Varan_workloads.Workload.fresh_variant w (Printf.sprintf "g%d" i))
  in
  let oracle = Oracle.create () in
  let config =
    { Config.default with Config.ring_size = 64; oracle = Some oracle }
  in
  let session = Nvx.launch ~config k variants in
  E.run_until_quiescent eng;
  Alcotest.(check (list (pair int string))) "no crashes" []
    (Nvx.crashes session);
  Alcotest.(check (option string)) "not degraded" None
    (Nvx.degraded session);
  Alcotest.(check int) "all variants alive" 3 (Nvx.alive_count session);
  let report = Oracle.report oracle in
  if not (Oracle.ok report) then
    Alcotest.failf "oracle: %s"
      (String.concat "; " report.Oracle.violations)

(* ------------------------------------------------------------------ *)
(* Distributed NVX: the link, the bridge, link-fault lifecycles        *)
(* ------------------------------------------------------------------ *)

module Node = Varan_net.Node
module Link = Varan_net.Link
module Bridge = Varan_net.Bridge

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_net_exn label case out =
  check_lifecycle_exn label case out;
  match H.check_net case out with
  | [] -> ()
  | fails ->
    Alcotest.failf "%s: %s\n  %s" label
      (H.describe_case case)
      (String.concat "\n  " fails)

(* Link-fault specs survive a print/parse round trip, so any failing net
   case reproduces from its printed plan alone. *)
let test_link_plan_roundtrip () =
  let plan =
    [
      Fault.Link_partition { from_seq = 4; duration = 120_000 };
      Fault.Link_delay { at_seq = 7; extra = 9_000 };
      Fault.Link_reorder { at_seq = 9 };
      Fault.Link_drop { at_seq = 11 };
      Fault.Link_dup { at_seq = 13 };
    ]
  in
  match Fault.of_string (Fault.to_string plan) with
  | Ok p -> Alcotest.(check bool) "round trip" true (p = plan)
  | Error e -> Alcotest.failf "link plan did not parse back: %s" e

(* The raw channel: frames arrive in send order, never before
   latency + serialization. *)
let test_link_inorder_latency () =
  let eng = E.create () in
  let a = Node.create ~eng "a" and b = Node.create ~eng "b" in
  let link = Link.create ~a ~b ~latency:2_000 ~cycles_per_kb:1_024 "l" in
  let arrivals = ref [] in
  ignore
    (E.spawn eng (fun () ->
         for i = 1 to 3 do
           Link.send link ~dir:0 ~bytes:1_024 i
         done));
  ignore
    (E.spawn eng (fun () ->
         for _ = 1 to 3 do
           let v = Link.recv link ~dir:0 in
           arrivals := (v, E.now_cycles ()) :: !arrivals
         done));
  E.run_until_quiescent eng;
  let arrivals = List.rev !arrivals in
  Alcotest.(check (list int)) "in send order" [ 1; 2; 3 ]
    (List.map fst arrivals);
  List.iter
    (fun (_, t) ->
      Alcotest.(check bool) "no frame beats latency + serialization" true
        (t >= 3_000L))
    arrivals;
  let s = Link.stats link in
  Alcotest.(check int) "all delivered" 3 s.Link.frames_delivered;
  Alcotest.(check int) "none lost" 0 s.Link.frames_lost

(* A partition window: the triggering frame and everything sent inside
   the window is lost; traffic after the window flows again. *)
let test_link_partition_window () =
  let eng = E.create () in
  let a = Node.create ~eng "a" and b = Node.create ~eng "b" in
  let faults ~seq = if seq = 0 then [ Link.Partition 50_000 ] else [] in
  let link = Link.create ~a ~b ~latency:1_000 ~faults "l" in
  let got = ref [] in
  ignore
    (E.spawn eng (fun () ->
         Link.send link ~dir:0 ~bytes:64 1;
         Link.send link ~dir:0 ~bytes:64 2;
         E.sleep 60_000;
         Link.send link ~dir:0 ~bytes:64 3));
  ignore (E.spawn eng (fun () -> got := [ Link.recv link ~dir:0 ]));
  E.run_until_quiescent eng;
  Alcotest.(check (list int)) "only the post-heal frame" [ 3 ] !got;
  let s = Link.stats link in
  Alcotest.(check int) "two frames lost to the window" 2 s.Link.frames_lost;
  Alcotest.(check int) "one partition window opened" 1 s.Link.partitions

(* Reorder is a one-slot swap; Duplicate delivers back to back. *)
let test_link_dup_and_reorder () =
  let eng = E.create () in
  let a = Node.create ~eng "a" and b = Node.create ~eng "b" in
  let faults ~seq =
    match seq with 0 -> [ Link.Reorder ] | 2 -> [ Link.Duplicate ] | _ -> []
  in
  let link = Link.create ~a ~b ~latency:1_000 ~faults "l" in
  let got = ref [] in
  ignore
    (E.spawn eng (fun () ->
         List.iter (fun i -> Link.send link ~dir:0 ~bytes:64 i) [ 1; 2; 3 ]));
  ignore
    (E.spawn eng (fun () ->
         for _ = 1 to 4 do
           got := Link.recv link ~dir:0 :: !got
         done));
  E.run_until_quiescent eng;
  Alcotest.(check (list int)) "one-slot swap, then the duplicate"
    [ 2; 1; 3; 3 ] (List.rev !got)

(* The tentpole invariant end to end: a partition longer than
   [unreachable_after] parks the remote follower [Unreachable] — no
   restart budget burned, the leader's gate freed by the bridge detach —
   and the heal probe's first ack reattaches the bridge and splices the
   follower back in through the checkpoint + tape-delta door, ending
   with the native digest. *)
let test_net_partition_unreachable_then_rejoin () =
  let net = { Config.default_net with Config.remote_followers = 1 } in
  let case =
    directed_case ~lifecycle:lc ~net ~seed:120 ~followers:2
      ~plan:[ Fault.Link_partition { from_seq = 3; duration = 800_000 } ]
      ()
  in
  let out = H.run_ops case (payload_ops 10) in
  check_net_exn "partition then heal" case out;
  let r = lifecycle_of out in
  Alcotest.(check bool) "remote follower parked unreachable" true
    (r.Lifecycle.unreachable >= 1);
  Alcotest.(check int) "no quarantines: the wire was sick, not the variant"
    0 r.Lifecycle.quarantines;
  let fr = List.find (fun f -> f.Lifecycle.fr_idx = 2) r.Lifecycle.followers in
  Alcotest.(check int) "no restart budget burned" 0 fr.Lifecycle.fr_restarts;
  Alcotest.(check bool) "follower ends healthy" true
    (fr.Lifecycle.fr_state = Lifecycle.Healthy);
  Alcotest.(check string) "with the native digest" out.H.native
    out.H.digests.(2);
  (match out.H.stats.Nvx.bridge with
  | None -> Alcotest.fail "no bridge stats"
  | Some b ->
    Alcotest.(check bool) "bridge detached at least once" true
      (b.Bridge.detaches >= 1);
    Alcotest.(check int) "every partition healed" b.Bridge.detaches
      b.Bridge.heals;
    Alcotest.(check bool) "the probe retransmitted through the window" true
      (b.Bridge.retransmits > 0))

(* Satellite: a follower partitioned across a retention-floor advance.
   With checkpointing on and the parked follower excluded from the
   retention floor (a partition has no deadline), the tape may age past
   its rejoin point while it is unreachable. On heal it must either
   restore a checkpoint + delta, or die cleanly on the truncated tape —
   never replay a wrong prefix. *)
let test_net_partition_across_retention_floor () =
  let net = { Config.default_net with Config.remote_followers = 1 } in
  let policy = { lc with Lifecycle.checkpoint_interval = 10_000 } in
  let case =
    directed_case ~lifecycle:policy ~net ~seed:121 ~followers:2
      ~plan:[ Fault.Link_partition { from_seq = 2; duration = 2_500_000 } ]
      ()
  in
  (* Enough events that the bridge's in-flight window fills during the
     partition and gates the leader: once the remote parks Unreachable
     the bridge detaches, the leader resumes, and the local follower
     consumes (and checkpoints, and retires tape) well past the
     remote's stale pre-partition checkpoint — the retention floor
     must actually advance for this test to exercise the
     rejoin-vs-truncation decision. *)
  let out = H.run_ops case (payload_ops 120) in
  check_net_exn "partition across retention floor" case out;
  let r = lifecycle_of out in
  Alcotest.(check bool) "remote follower parked unreachable" true
    (r.Lifecycle.unreachable >= 1);
  (* The retention floor must actually have advanced past the remote's
     park point, or the rejoin-vs-truncation decision was never made. *)
  (match Nvx.tuple_tape out.H.session 0 with
  | Some tape ->
    Alcotest.(check bool) "retention floor advanced during the partition"
      true
      (Tape.base tape > 0)
  | None -> Alcotest.fail "no tape");
  let fr = List.find (fun f -> f.Lifecycle.fr_idx = 2) r.Lifecycle.followers in
  (match fr.Lifecycle.fr_state with
  | Lifecycle.Healthy | Lifecycle.Catching_up ->
    (* The rejoin door worked: checkpoint + tape delta, exact digest. *)
    Alcotest.(check string) "rejoined with the native digest" out.H.native
      out.H.digests.(2)
  | Lifecycle.Dead ->
    Alcotest.(check bool)
      (Printf.sprintf "died cleanly on truncation (reason: %s)"
         fr.Lifecycle.fr_reason)
      true
      (contains ~sub:"truncated" fr.Lifecycle.fr_reason)
  | Lifecycle.Unreachable ->
    (* The run ended before the heal probe got through — legal, but this
       directed case is tuned so it should not happen. *)
    Alcotest.fail "partition never healed inside the directed window"
  | s ->
    Alcotest.failf "unexpected terminal state %s" (Lifecycle.state_name s));
  Alcotest.(check bool) "never a wrong prefix" true
    (Array.for_all
       (fun i -> (not out.H.alive.(i)) || out.H.digests.(i) = out.H.native)
       [| 0; 1; 2 |])

(* ------------------------------------------------------------------ *)
(* The randomized distributed sweep                                    *)
(* ------------------------------------------------------------------ *)

(* 200 seeds of partition/delay/reorder/drop/duplicate plans over
   2–4 followers with 1..n-1 of them remote. Reproduce failures with
   `varan torture --net --seed N`. *)
let net_sweep_cases = 200

let test_net_sweep () =
  let kinds = Hashtbl.create 8 in
  let healed = ref 0 in
  for i = 0 to net_sweep_cases - 1 do
    let seed = base_seed + i in
    let case, out, fails = H.run_net_seed seed in
    (match fails with
    | [] -> ()
    | fs ->
      Alcotest.failf
        "net seed %d failed (reproduce: varan torture --net --seed %d)\n\
        \  %s\n\
        \  %s" seed seed (H.describe_case case)
        (String.concat "\n  " fs));
    List.iter
      (fun inj ->
        let key =
          match inj with
          | Fault.Link_partition _ -> "partition"
          | Fault.Link_delay _ -> "delay"
          | Fault.Link_reorder _ -> "reorder"
          | Fault.Link_drop _ -> "drop"
          | Fault.Link_dup _ -> "dup"
          | _ -> "node-fault"
        in
        Hashtbl.replace kinds key ())
      case.H.plan;
    match out.H.stats.Nvx.bridge with
    | Some b -> healed := !healed + b.Bridge.heals
    | None -> ()
  done;
  (* The sweep must exercise every link-fault kind and actually heal
     partitions, or the lifecycle claims above are vacuous. *)
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep covered %s" key)
        true (Hashtbl.mem kinds key))
    [ "partition"; "delay"; "reorder"; "drop"; "dup"; "node-fault" ];
  Alcotest.(check bool) "sweep healed partitions" true (!healed > 0)

(* ------------------------------------------------------------------ *)
(* Record/replay round trips under fault plans                         *)
(* ------------------------------------------------------------------ *)

(* Record tuple 0 of a faulted live run, replay the log into fresh
   clients, and require the replay stream's oracle digest to equal the
   live one — record/replay loses nothing, even across a failover. *)
let roundtrip seed =
  let case = H.gen_case seed in
  if Fault.fork_ops case.H.plan <> [] then None
  else begin
    let ops = H.build_program case in
    let n = case.H.followers + 1 in
    (* Live run, recorded. *)
    let eng = E.create () in
    let k = K.create ~seed eng in
    let obs = Array.init n (fun _ -> P.observations ()) in
    let variants =
      List.init n (fun i ->
          Variant.make
            (Printf.sprintf "v%d" i)
            (Variant.single (fun api ->
                 P.interpret ~obs:obs.(i) ~path:"0" ops api)))
    in
    let live_oracle = Oracle.create () in
    let config =
      {
        Config.default with
        Config.ring_size = case.H.ring_size;
        fault_plan = case.H.plan;
        oracle = Some live_oracle;
      }
    in
    Varan_kernel.Vfs.add_file k "/var/.keep" "";
    let session = Nvx.launch ~config k variants in
    let recorder = RR.record session k ~tuple:0 ~path:"/var/run.log" in
    E.run_until_quiescent eng;
    ignore (E.spawn eng (fun () -> RR.stop recorder));
    E.run_until_quiescent eng;
    let live_report = Oracle.report live_oracle in
    let log =
      match Varan_kernel.Vfs.read_file k "/var/run.log" with
      | Some l -> l
      | None -> Alcotest.failf "seed %d: no log recorded" seed
    in
    (* Replay into two fresh clients on a fresh kernel. *)
    let eng2 = E.create () in
    let k2 = K.create ~seed eng2 in
    Varan_kernel.Vfs.add_file k2 "/var/.keep" "";
    Varan_kernel.Vfs.add_file k2 "/var/run.log" log;
    let robs = Array.init 2 (fun _ -> P.observations ()) in
    let rvariants =
      List.init 2 (fun i ->
          Variant.make
            (Printf.sprintf "r%d" i)
            (Variant.single (fun api ->
                 P.interpret ~obs:robs.(i) ~path:"0" ops api)))
    in
    let rp = RR.replay k2 ~path:"/var/run.log" rvariants in
    let replay_oracle = Oracle.create () in
    Oracle.attach_ring replay_oracle ~tuple:0 (RR.replay_ring rp);
    E.run_until_quiescent eng2;
    let replay_report = Oracle.report replay_oracle in
    Some (case, live_report, replay_report, RR.replay_crashes rp)
  end

let test_record_replay_roundtrip () =
  let ran = ref 0 in
  let seed = ref 0x5EED in
  while !ran < 20 do
    (match roundtrip !seed with
    | None -> ()
    | Some (case, live, replay, replay_crashes) ->
      incr ran;
      if replay_crashes <> [] then
        Alcotest.failf "seed %d (%s): replay clients crashed: %s" !seed
          (H.describe_case case)
          (String.concat "; " (List.map snd replay_crashes));
      if not (Oracle.ok replay) then
        Alcotest.failf "seed %d (%s): replay oracle: %s" !seed
          (H.describe_case case)
          (String.concat "; " replay.Oracle.violations);
      let live_digest = List.assoc_opt 0 (List.map (fun (t, n, d) -> (t, (n, d))) live.Oracle.digests) in
      let replay_digest = List.assoc_opt 0 (List.map (fun (t, n, d) -> (t, (n, d))) replay.Oracle.digests) in
      if live_digest <> replay_digest then
        Alcotest.failf
          "seed %d (%s): tuple-0 stream digest changed across record/replay"
          !seed (H.describe_case case));
    incr seed
  done

let () =
  Alcotest.run "varan_fault"
    [
      ( "directed",
        [
          Alcotest.test_case "leader crash during publish" `Quick
            test_leader_crash_during_publish;
          Alcotest.test_case "follower stall at full ring" `Quick
            test_follower_stall_at_full_ring;
          Alcotest.test_case "fork then crash" `Quick test_fork_then_crash;
          Alcotest.test_case "cascading crashes in index order" `Quick
            test_cascading_crashes_in_index_order;
          Alcotest.test_case "all followers crash" `Quick
            test_all_followers_crash;
          Alcotest.test_case "zero followers pay no streaming costs" `Quick
            test_zero_followers_pay_no_streaming_costs;
          Alcotest.test_case "drop-payload negative control" `Quick
            test_drop_payload_negative_control;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "stall injection fires exactly once" `Quick
            test_stall_fires_once;
          Alcotest.test_case "respawn reuses the rewrite cache" `Quick
            test_respawn_uses_rewrite_cache;
          Alcotest.test_case "quarantine then rejoin" `Quick
            test_quarantine_then_rejoin;
          Alcotest.test_case "dead after restart budget" `Quick
            test_dead_after_restart_budget;
          Alcotest.test_case "quarantine kill dumps post-mortem" `Quick
            test_quarantine_kill_dumps_postmortem;
          Alcotest.test_case "all followers dead degrades" `Quick
            test_degrade_all_followers_dead;
          Alcotest.test_case "no leader remains degrades" `Quick
            test_degrade_no_leader_remains;
          Alcotest.test_case "200-seed lifecycle sweep" `Slow
            test_lifecycle_sweep;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "respawns reuse checkpoints" `Quick
            test_respawn_reuses_checkpoints;
          Alcotest.test_case "zero-checkpoint full-replay fallback" `Quick
            test_zero_checkpoint_full_replay;
          Alcotest.test_case "time-travel retention edges" `Quick
            test_time_travel_retention_edges;
          Alcotest.test_case "200-seed checkpoint sweep" `Slow
            test_checkpoint_sweep;
        ] );
      ( "sweep",
        [ Alcotest.test_case "200 random fault plans" `Slow test_torture_sweep ]
      );
      ( "shard",
        [
          Alcotest.test_case "200-seed sharded-pool sweep" `Slow
            test_shard_sweep;
        ] );
      ( "futex",
        [
          Alcotest.test_case "200-seed contended-futex sweep" `Slow
            test_futex_sweep;
          Alcotest.test_case "64-thread leader crash promotes" `Quick
            test_futex_leader_crash_promotes;
          Alcotest.test_case "thread-grid-64 workload digest-clean" `Quick
            test_thread_grid_64_workload;
        ] );
      ( "net",
        [
          Alcotest.test_case "link plan print/parse round trip" `Quick
            test_link_plan_roundtrip;
          Alcotest.test_case "link delivers in order after latency" `Quick
            test_link_inorder_latency;
          Alcotest.test_case "partition window loses its frames" `Quick
            test_link_partition_window;
          Alcotest.test_case "duplicate and one-slot reorder" `Quick
            test_link_dup_and_reorder;
          Alcotest.test_case "partition parks unreachable then rejoins" `Quick
            test_net_partition_unreachable_then_rejoin;
          Alcotest.test_case "partition across the retention floor" `Quick
            test_net_partition_across_retention_floor;
          Alcotest.test_case "200-seed link-fault sweep" `Slow test_net_sweep;
        ] );
      ( "record-replay",
        [
          Alcotest.test_case "round trip under fault plans" `Slow
            test_record_replay_roundtrip;
        ] );
    ]

(* Integration tests for the NVX core: event streaming, virtualisation of
   nondeterminism, descriptor grants, divergence rules, transparent
   failover, multi-threaded ordering and the event-pump ablation. *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Flags = Varan_kernel.Flags
module Sysno = Varan_syscall.Sysno
module Errno = Varan_syscall.Errno
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Rules = Varan_bpf.Rules

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.name e)

let mk_env () =
  let eng = E.create () in
  let k = K.create eng in
  (eng, k)

let simple_variant ?rules name body =
  Variant.make ?rules name (Variant.single body)

(* ---- basic streaming ------------------------------------------------ *)

let test_followers_replay_results () =
  let eng, k = mk_env () in
  (* Each variant reads /dev/urandom; without virtualisation they would
     all read different bytes. Under NVX every variant must observe the
     leader's bytes. *)
  let results = Array.make 3 "" in
  let body i api =
    let fd = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
    let b = ok (Api.read api fd 16) in
    results.(i) <- Bytes.to_string b;
    ignore (ok (Api.close api fd))
  in
  let variants = List.init 3 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i)) in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "16 bytes" 16 (String.length results.(0));
  Alcotest.(check string) "follower 1 sees leader bytes" results.(0) results.(1);
  Alcotest.(check string) "follower 2 sees leader bytes" results.(0) results.(2);
  let st = Nvx.stats session in
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  let leader = st.Nvx.variants.(0) in
  let f1 = st.Nvx.variants.(1) in
  Alcotest.(check bool) "leader published" true (leader.Nvx.vs_events_published > 0);
  Alcotest.(check int) "follower consumed all"
    leader.Nvx.vs_events_published f1.Nvx.vs_events_consumed

let test_time_virtualised () =
  let eng, k = mk_env () in
  let times = Array.make 2 0L in
  let body i api =
    (* Skew the two variants so their local clocks differ; the follower
       must still observe the leader's timestamp. *)
    Api.compute api (10_000 * (i + 1));
    times.(i) <- Api.clock_gettime_ns api
  in
  let variants = List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i)) in
  ignore (Nvx.launch k variants);
  E.run eng;
  Alcotest.(check int64) "vdso result replayed" times.(0) times.(1)

let test_fd_tables_stay_aligned () =
  let eng, k = mk_env () in
  (* Follower closes are nullified (only replayed), exactly as in the
     prototype — so followers may keep stale entries — but every granted
     descriptor must land at the same fd {e number} as in the leader,
     which is what later calls translate through. *)
  let fds = Array.make 2 (0, 0, 0) in
  let body i api =
    let a = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    let b = ok (Api.openf api "/dev/zero" Flags.o_rdonly) in
    ignore (ok (Api.close api a));
    let c = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
    fds.(i) <- (a, b, c);
    ignore (ok (Api.close api b));
    ignore (ok (Api.close api c))
  in
  let variants = List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i)) in
  ignore (Nvx.launch k variants);
  E.run eng;
  Alcotest.(check bool) "identical fd numbers across variants" true
    (fds.(0) = fds.(1));
  let _, _, c = fds.(0) in
  let a, _, _ = fds.(0) in
  Alcotest.(check int) "lowest-free reuse observed by both" a c

let test_write_results_replayed () =
  let eng, k = mk_env () in
  let rets = Array.make 2 0 in
  let body i api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
    rets.(i) <- ok (Api.write_str api fd "hello world");
    ignore (ok (Api.close api fd))
  in
  let variants = List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i)) in
  ignore (Nvx.launch k variants);
  E.run eng;
  Alcotest.(check int) "leader ret" 11 rets.(0);
  Alcotest.(check int) "follower sees same ret" 11 rets.(1)

let test_only_leader_touches_files () =
  let eng, k = mk_env () in
  let body _i api =
    let fd =
      ok (Api.openf api "/tmp/out" (Flags.o_wronly lor Flags.o_creat))
    in
    ignore (ok (Api.write_str api fd "once"));
    ignore (ok (Api.close api fd))
  in
  let variants = List.init 3 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i)) in
  ignore (Nvx.launch k variants);
  E.run eng;
  (* If followers also executed the write, the file would hold the text
     several times (shared offset through granted descriptors). *)
  Alcotest.(check (option string))
    "written exactly once" (Some "once")
    (Varan_kernel.Vfs.read_file k "/tmp/out")

(* ---- divergence handling -------------------------------------------- *)

let test_divergence_without_rules_kills_follower () =
  let eng, k = mk_env () in
  let leader_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    ignore (ok (Api.close api fd))
  in
  let follower_body api =
    (* Extra getuid before open: a syscall-sequence divergence. *)
    ignore (Api.getuid api);
    let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    ignore (ok (Api.close api fd))
  in
  let variants =
    [ simple_variant "leader" leader_body; simple_variant "buggy" follower_body ]
  in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "one crash" 1 (List.length (Nvx.crashes session));
  Alcotest.(check bool) "leader alive" true (Nvx.is_alive session 0);
  Alcotest.(check bool) "follower dead" false (Nvx.is_alive session 1)

let test_divergence_addition_rule () =
  let eng, k = mk_env () in
  let final = Array.make 2 0 in
  let leader_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    ignore (ok (Api.close api fd));
    final.(0) <- 1
  in
  let follower_body api =
    ignore (Api.getuid api);
    (* allowed insertion *)
    let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    ignore (ok (Api.close api fd));
    final.(1) <- 1
  in
  let rules =
    Rules.allow_added_syscalls
      ~expected_leader:[ Sysno.to_int Sysno.Open ]
      ~added:[ Sysno.to_int Sysno.Getuid ]
  in
  let variants =
    [
      simple_variant "leader" leader_body;
      simple_variant ~rules "newer" follower_body;
    ]
  in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check (list int)) "both finished" [ 1; 1 ] (Array.to_list final);
  let st = Nvx.stats session in
  Alcotest.(check int) "one divergence executed locally" 1
    st.Nvx.variants.(1).Nvx.vs_divergences_executed;
  match Nvx.divergence_log session with
  | [ d ] ->
    Alcotest.(check string) "logged variant" "newer" d.Nvx.d_variant;
    Alcotest.(check string) "logged call" "getuid" d.Nvx.d_follower_call;
    Alcotest.(check string) "logged event" "open" d.Nvx.d_leader_event;
    Alcotest.(check string) "logged verdict" "execute-follower-call"
      d.Nvx.d_verdict
  | l -> Alcotest.failf "expected one log entry, got %d" (List.length l)

let test_divergence_removal_rule () =
  let eng, k = mk_env () in
  let finished = ref false in
  let leader_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    (* Leader-only fcntl (like lighttpd rev 2577 -> 2578 in reverse). *)
    ignore (ok (Api.fcntl api fd Flags.f_getfl 0));
    ignore (ok (Api.close api fd))
  in
  let follower_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    ignore (ok (Api.close api fd));
    finished := true
  in
  let rules =
    Rules.allow_removed_syscalls ~removed:[ Sysno.to_int Sysno.Fcntl ]
  in
  let variants =
    [
      simple_variant "leader" leader_body;
      simple_variant ~rules "older" follower_body;
    ]
  in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check bool) "follower finished" true !finished;
  let st = Nvx.stats session in
  Alcotest.(check int) "one event skipped" 1
    st.Nvx.variants.(1).Nvx.vs_divergences_skipped

let test_divergence_coalescing () =
  (* §2.3 pattern (ii): the leader (a revision with extra buffering)
     writes 1024 bytes in one syscall; the follower writes the same bytes
     as two 512-byte syscalls. No BPF rule is needed: the monitor serves
     the follower's writes as slices of the single leader event. *)
  let eng, k = mk_env () in
  let rets = Array.make 2 [] in
  let leader_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
    rets.(0) <- [ ok (Api.write api fd (Bytes.make 1024 'x')) ];
    ignore (ok (Api.close api fd))
  in
  let follower_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
    let a = ok (Api.write api fd (Bytes.make 512 'x')) in
    let b = ok (Api.write api fd (Bytes.make 512 'x')) in
    rets.(1) <- [ a; b ];
    ignore (ok (Api.close api fd))
  in
  let variants =
    [
      simple_variant "buffered" leader_body;
      simple_variant "unbuffered" follower_body;
    ]
  in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check (list int)) "leader wrote once" [ 1024 ] rets.(0);
  Alcotest.(check (list int)) "follower slices" [ 512; 512 ] rets.(1);
  let st = Nvx.stats session in
  Alcotest.(check int) "one coalesced slice" 1
    st.Nvx.variants.(1).Nvx.vs_divergences_coalesced

let test_divergence_coalescing_reverse () =
  (* The other direction — leader unbuffered (two writes), follower
     buffered (one big write) — resolves through the normal retry loop:
     the follower's single write matches the first event and the
     remaining event feeds its continuation loop (write_all). *)
  let eng, k = mk_env () in
  let written = Array.make 2 0 in
  let leader_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
    written.(0) <-
      ok (Api.write api fd (Bytes.make 512 'y'))
      + ok (Api.write api fd (Bytes.make 512 'y'));
    ignore (ok (Api.close api fd))
  in
  let follower_body api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
    (* write_all loops until all 1024 bytes are accepted; each inner
       write matches one of the leader's two events. *)
    ok (Api.write_all api fd (Bytes.make 1024 'y'));
    written.(1) <- 1024;
    ignore (ok (Api.close api fd))
  in
  let variants =
    [
      simple_variant "unbuffered" leader_body;
      simple_variant "buffered" follower_body;
    ]
  in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check int) "leader total" 1024 written.(0);
  Alcotest.(check int) "follower total" 1024 written.(1)

(* ---- transparent failover -------------------------------------------- *)

(* An echo server over the simulated network: serves [n] requests on one
   connection. The buggy revision crashes while processing any request
   whose payload is "BOOM". *)
let echo_server ~buggy ~requests port api =
  let lfd = ok (Api.socket api) in
  ok (Api.bind api lfd port);
  ok (Api.listen api lfd);
  let c = ok (Api.accept api lfd) in
  for _ = 1 to requests do
    let data = ok (Api.recv api c 256) in
    Api.compute api 5_000;
    if buggy && Bytes.to_string data = "BOOM" then failwith "segfault";
    ignore (ok (Api.send api c data))
  done;
  ignore (ok (Api.close api c));
  ignore (ok (Api.close api lfd))

let rec connect_retry api fd port =
  match Api.connect api fd port with
  | Ok () -> ()
  | Error Errno.ECONNREFUSED ->
    E.sleep 20_000;
    connect_retry api fd port
  | Error e -> Alcotest.failf "connect: %s" (Errno.name e)

let run_failover_scenario ~buggy_is_leader =
  let eng, k = mk_env () in
  let port = 4242 in
  let requests = [ "one"; "BOOM"; "three" ] in
  let replies = ref [] in
  let latencies = ref [] in
  (* Client *)
  let cproc = K.new_proc k "client" in
  ignore
    (E.spawn eng ~name:"client" (fun () ->
         let api = Api.direct k cproc in
         let fd = ok (Api.socket api) in
         connect_retry api fd port;
         List.iter
           (fun req ->
             let t0 = E.now_cycles () in
             ignore (ok (Api.send api fd (Bytes.of_string req)));
             let reply = ok (Api.recv api fd 256) in
             let t1 = E.now_cycles () in
             replies := Bytes.to_string reply :: !replies;
             latencies := Int64.to_float (Int64.sub t1 t0) :: !latencies)
           requests;
         ignore (ok (Api.close api fd))));
  let server buggy _i api = echo_server ~buggy ~requests:3 port api in
  let variants =
    if buggy_is_leader then
      [
        simple_variant "buggy" (server true 0);
        simple_variant "good" (server false 1);
      ]
    else
      [
        simple_variant "good" (server false 0);
        simple_variant "buggy" (server true 1);
      ]
  in
  let session = Nvx.launch k variants in
  E.run_until_quiescent eng;
  (session, List.rev !replies, List.rev !latencies)

let test_failover_leader_crash () =
  let session, replies, latencies = run_failover_scenario ~buggy_is_leader:true in
  Alcotest.(check (list string))
    "client got every reply" [ "one"; "BOOM"; "three" ] replies;
  Alcotest.(check int) "one crash" 1 (List.length (Nvx.crashes session));
  Alcotest.(check int) "follower promoted" 1 (Nvx.leader_index session);
  Alcotest.(check bool) "promoted role" true (Nvx.role_of session 1 = Nvx.Leader);
  (* The failed-over request is the slow one. *)
  (match latencies with
  | [ l1; l2; l3 ] ->
    Alcotest.(check bool)
      (Printf.sprintf "crash request slower (%f vs %f, %f)" l2 l1 l3)
      true
      (l2 > l1 && l2 > l3)
  | _ -> Alcotest.fail "expected three latencies")

let test_failover_follower_crash_no_disruption () =
  let session, replies, latencies =
    run_failover_scenario ~buggy_is_leader:false
  in
  Alcotest.(check (list string))
    "client got every reply" [ "one"; "BOOM"; "three" ] replies;
  Alcotest.(check int) "one crash" 1 (List.length (Nvx.crashes session));
  Alcotest.(check int) "leader unchanged" 0 (Nvx.leader_index session);
  match latencies with
  | [ l1; l2; l3 ] ->
    (* No failover work happens on the client's path: the BOOM request
       costs about the same as its neighbours. *)
    let base = (l1 +. l3) /. 2.0 in
    Alcotest.(check bool)
      (Printf.sprintf "no latency spike (%f vs %f)" l2 base)
      true
      (l2 < base *. 1.5)
  | _ -> Alcotest.fail "expected three latencies"

(* ---- multi-threaded variants ----------------------------------------- *)

let test_multithreaded_clock_ordering () =
  let eng, k = mk_env () in
  (* Two threads per variant, each writing to its own file descriptor.
     Follower threads must replay their own events in leader order. *)
  let sums = Array.make 2 0 in
  let program =
    {
      Variant.units = 2;
      unit_kind = Variant.Thread;
      body =
        (fun ~unit_idx api ->
          let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
          for i = 1 to 5 do
            Api.compute api (1000 * (unit_idx + 1));
            ignore (ok (Api.write_str api fd (Printf.sprintf "%d-%d" unit_idx i)))
          done;
          ignore (ok (Api.close api fd)))
    }
  in
  let mk name = Variant.make name program in
  let session = Nvx.launch k [ mk "v0"; mk "v1" ] in
  ignore sums;
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  let st = Nvx.stats session in
  Alcotest.(check int) "follower consumed everything"
    st.Nvx.variants.(0).Nvx.vs_events_published
    st.Nvx.variants.(1).Nvx.vs_events_consumed

let test_futex_coordination_streams () =
  (* Two threads per variant coordinating through futex wait/wake: the
     leader's real blocking order is captured in the stream, so follower
     threads replay the same order without touching the kernel futex. *)
  let eng, k = mk_env () in
  let order = Array.make 2 [] in
  let program i =
    {
      Variant.units = 2;
      unit_kind = Variant.Thread;
      body =
        (fun ~unit_idx api ->
          if unit_idx = 1 then begin
            Api.futex_wait api 0xBEEF;
            order.(i) <- order.(i) @ [ "woken" ];
            ignore (Api.getuid api)
          end
          else begin
            Api.compute api 50_000;
            order.(i) <- order.(i) @ [ "waking" ];
            ignore (Api.futex_wake api 0xBEEF 1)
          end);
    }
  in
  let variants =
    List.init 2 (fun i -> Variant.make (Printf.sprintf "v%d" i) (program i))
  in
  let session = Nvx.launch k variants in
  E.run_until_quiescent eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check (list string))
    "leader order" [ "waking"; "woken" ] order.(0);
  Alcotest.(check (list string))
    "follower replays the same order" [ "waking"; "woken" ] order.(1)

let test_simulation_deterministic () =
  (* The whole point of the simulated machine: identical runs produce
     identical observables, cycle for cycle. *)
  let run () =
    let eng, k = mk_env () in
    let digest = Buffer.create 64 in
    let body i api =
      let fd = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
      let b = ok (Api.read api fd 8) in
      Buffer.add_string digest (Printf.sprintf "%d:%s;" i (Bytes.to_string b |> String.escaped));
      ignore (ok (Api.close api fd))
    in
    let variants =
      List.init 3 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
    in
    ignore (Nvx.launch k variants);
    E.run eng;
    (Buffer.contents digest, E.now eng)
  in
  let d1, t1 = run () in
  let d2, t2 = run () in
  Alcotest.(check string) "identical observables" d1 d2;
  Alcotest.(check int64) "identical final time" t1 t2

(* ---- multi-process variants ------------------------------------------ *)

let test_multiprocess_separate_rings () =
  let eng, k = mk_env () in
  let program =
    {
      Variant.units = 3;
      unit_kind = Variant.Process;
      body =
        (fun ~unit_idx api ->
          let fd = ok (Api.openf api "/dev/null" Flags.o_wronly) in
          for _ = 1 to 4 do
            Api.compute api (500 * (unit_idx + 1));
            ignore (ok (Api.write_str api fd "w"))
          done;
          ignore (ok (Api.close api fd)))
    }
  in
  let mk name = Variant.make name program in
  let session = Nvx.launch k [ mk "v0"; mk "v1" ] in
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  let st = Nvx.stats session in
  Alcotest.(check int) "three rings" 3 (Array.length st.Nvx.rings);
  Array.iter
    (fun (r : Varan_ringbuf.Ring.stats) ->
      Alcotest.(check bool) "every ring carried events" true
        (r.Varan_ringbuf.Ring.publishes > 0))
    st.Nvx.rings

(* ---- ablations -------------------------------------------------------- *)

let run_simple_session config =
  let eng, k = mk_env () in
  let results = Array.make 2 "" in
  let body i api =
    let fd = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
    let b = ok (Api.read api fd 32) in
    results.(i) <- Bytes.to_string b;
    ignore (ok (Api.close api fd))
  in
  let variants = List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i)) in
  let session = Nvx.launch ~config k variants in
  E.run_until_quiescent eng;
  (session, results)

let test_event_pump_mode_equivalent () =
  let config = { Config.default with Config.streaming = Config.Event_pump } in
  let session, results = run_simple_session config in
  Alcotest.(check string) "same results via pump" results.(0) results.(1);
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session))

let test_trap_only_mode_equivalent () =
  let config =
    { Config.default with Config.interception = Config.Trap_only }
  in
  let session, results = run_simple_session config in
  Alcotest.(check string) "same results trap-only" results.(0) results.(1);
  let st = Nvx.stats session in
  Alcotest.(check int) "no jump dispatches" 0
    st.Nvx.variants.(0).Nvx.vs_jump_dispatches;
  Alcotest.(check bool) "all traps" true
    (st.Nvx.variants.(0).Nvx.vs_trap_dispatches > 0)

let test_busy_wait_mode_equivalent () =
  let config =
    { Config.default with Config.follower_wait = Config.Busy_wait }
  in
  let _session, results = run_simple_session config in
  Alcotest.(check string) "same results busy-wait" results.(0) results.(1)

let test_tiny_ring_still_correct () =
  let config = Config.with_ring_size Config.default 1 in
  let _session, results = run_simple_session config in
  Alcotest.(check string) "ring size 1 still correct" results.(0) results.(1)

(* ---- signals ----------------------------------------------------------- *)

let test_signal_streamed_to_followers () =
  let eng, k = mk_env () in
  (* Each variant registers a handler; an outside process signals the
     LEADER's pid only. Followers must run their own handler at the same
     stream position, via the Ev_signal event. *)
  let fired = Array.make 3 (-1) in
  let progress = Array.make 3 0 in
  let pids = Array.make 3 0 in
  let body i api =
    pids.(i) <- Api.getpid api;
    Api.set_signal_handler api 10 (fun _ -> fired.(i) <- progress.(i));
    for step = 1 to 6 do
      progress.(i) <- step;
      let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
      ignore (ok (Api.close api fd));
      Api.compute api 10_000
    done
  in
  let variants =
    List.init 3 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch k variants in
  (* The signaller aims at whatever pid the leader ends up with. *)
  let sproc = K.new_proc k "signaller" in
  ignore
    (E.spawn eng ~name:"signaller" (fun () ->
         let api = Varan_kernel.Api.direct k sproc in
         E.consume 60_000;
         while pids.(0) = 0 do
           E.sleep 5_000
         done;
         ignore (Api.kill api pids.(0) 10)));
  E.run_until_quiescent eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check bool) "leader handler fired" true (fired.(0) >= 0);
  Alcotest.(check int) "follower 1 fired at same position" fired.(0) fired.(1);
  Alcotest.(check int) "follower 2 fired at same position" fired.(0) fired.(2)

let test_signal_native_delivery () =
  (* Outside NVX: pending signals are delivered at the next syscall. *)
  let eng, k = mk_env () in
  let fired = ref false in
  let proc = K.new_proc k "p" in
  let tid =
    E.spawn eng (fun () ->
        let api = Api.direct k proc in
        Api.set_signal_handler api 12 (fun _ -> fired := true);
        ignore (Api.kill api (Api.getpid api) 12);
        Alcotest.(check bool) "not yet delivered" false !fired;
        ignore (Api.getuid api);
        Alcotest.(check bool) "delivered at boundary" true !fired)
  in
  K.register_task k proc tid;
  E.run eng

(* ---- edge cases --------------------------------------------------------- *)

let test_failover_chain_two_crashes () =
  (* Three versions; the two newest both carry the bug: the leader
     crashes, the first promoted follower crashes on the same (restarted)
     request, and the last good version finishes the job. *)
  let eng, k = mk_env () in
  let port = 4545 in
  let server buggy _i api = echo_server ~buggy ~requests:3 port api in
  let variants =
    [
      simple_variant "buggy-a" (server true 0);
      simple_variant "buggy-b" (server true 1);
      simple_variant "good" (server false 2);
    ]
  in
  let session = Nvx.launch k variants in
  let replies = ref [] in
  let cproc = K.new_proc k "client" in
  ignore
    (E.spawn eng ~name:"client" (fun () ->
         let api = Api.direct k cproc in
         let fd = ok (Api.socket api) in
         connect_retry api fd port;
         List.iter
           (fun req ->
             ignore (ok (Api.send api fd (Bytes.of_string req)));
             let reply = ok (Api.recv api fd 256) in
             replies := Bytes.to_string reply :: !replies)
           [ "one"; "BOOM"; "three" ];
         ignore (ok (Api.close api fd))));
  E.run_until_quiescent eng;
  Alcotest.(check (list string))
    "all replies despite two crashes" [ "one"; "BOOM"; "three" ]
    (List.rev !replies);
  Alcotest.(check int) "two crashes" 2 (List.length (Nvx.crashes session));
  Alcotest.(check int) "last version leads" 2 (Nvx.leader_index session)

let test_failover_cascade_seven_crashes () =
  (* The extreme case: seven buggy revisions ahead of one good one. The
     crash cascades through seven promotions; the last version serves the
     request. *)
  let eng, k = mk_env () in
  let port = 4646 in
  let server buggy _i api = echo_server ~buggy ~requests:2 port api in
  let variants =
    List.init 7 (fun i ->
        simple_variant (Printf.sprintf "buggy%d" i) (server true i))
    @ [ simple_variant "good" (server false 7) ]
  in
  let session = Nvx.launch k variants in
  let replies = ref [] in
  let cproc = K.new_proc k "client" in
  ignore
    (E.spawn eng ~name:"client" (fun () ->
         let api = Api.direct k cproc in
         let fd = ok (Api.socket api) in
         connect_retry api fd port;
         List.iter
           (fun req ->
             ignore (ok (Api.send api fd (Bytes.of_string req)));
             let reply = ok (Api.recv api fd 256) in
             replies := Bytes.to_string reply :: !replies)
           [ "BOOM"; "two" ];
         ignore (ok (Api.close api fd))));
  E.run_until_quiescent eng;
  Alcotest.(check (list string))
    "client survives a seven-deep crash cascade" [ "BOOM"; "two" ]
    (List.rev !replies);
  Alcotest.(check int) "seven crashes" 7 (List.length (Nvx.crashes session));
  Alcotest.(check int) "good version leads" 7 (Nvx.leader_index session);
  Alcotest.(check int) "one survivor" 1 (Nvx.alive_count session)

let test_pool_payloads_freed () =
  let eng, k = mk_env () in
  let body _i api =
    let fd = ok (Api.openf api "/dev/zero" Flags.o_rdonly) in
    for _ = 1 to 50 do
      ignore (ok (Api.read api fd 512))
    done;
    ignore (ok (Api.close api fd))
  in
  let variants =
    List.init 3 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch k variants in
  E.run eng;
  let st = Nvx.stats session in
  Alcotest.(check int) "all payload chunks freed" 0
    st.Nvx.pool.Varan_shmem.Pool.live_chunks;
  Alcotest.(check bool) "allocations happened" true
    (st.Nvx.pool.Varan_shmem.Pool.allocs >= 50)

let test_exit_group_streams_to_followers () =
  let eng, k = mk_env () in
  let reached = Array.make 2 false in
  let body i api =
    ignore (Api.getuid api);
    if true then ignore (Api.exit_group api 0);
    reached.(i) <- true
  in
  let variants =
    List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch k variants in
  E.run_until_quiescent eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check bool) "leader stopped at exit" false reached.(0);
  Alcotest.(check bool) "follower stopped at exit" false reached.(1)

(* ---- tables and dispatch ------------------------------------------------ *)

let test_syscall_table_override () =
  let module T = Varan_nvx.Syscall_table in
  let base = T.default_table "custom" in
  Alcotest.(check bool) "write streams" true
    (T.lookup base Sysno.Write = T.Stream);
  Alcotest.(check bool) "mmap local" true (T.lookup base Sysno.Mmap = T.Local);
  Alcotest.(check bool) "time virtual" true
    (T.lookup base Sysno.Time = T.Virtual);
  let custom = T.override base [ (Sysno.Write, T.Local) ] in
  Alcotest.(check bool) "override applies" true
    (T.lookup custom Sysno.Write = T.Local);
  Alcotest.(check bool) "original untouched" true
    (T.lookup base Sysno.Write = T.Stream);
  Alcotest.(check bool) "leader and follower tables distinct values" true
    (T.name T.leader = "leader" && T.name T.follower = "follower")

let test_vdso_dispatch_counted () =
  let eng, k = mk_env () in
  let body _i api =
    for _ = 1 to 5 do
      ignore (Api.time api)
    done
  in
  let variants =
    List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch k variants in
  E.run eng;
  let st = Nvx.stats session in
  Alcotest.(check int) "leader vdso dispatches" 5
    st.Nvx.variants.(0).Nvx.vs_vdso_dispatches;
  Alcotest.(check int) "follower vdso dispatches" 5
    st.Nvx.variants.(1).Nvx.vs_vdso_dispatches;
  (* Rewriting stats were recorded for each variant's image. *)
  match st.Nvx.variants.(0).Nvx.vs_rewrite with
  | Some r ->
    Alcotest.(check bool) "image had syscall sites" true
      (r.Varan_binary.Rewriter.total_syscalls > 0)
  | None -> Alcotest.fail "no rewrite stats"

let test_stub_syscalls_succeed () =
  (* The broad tail of bookkeeping syscalls must at least succeed with
     sensible defaults both natively and under NVX. *)
  let module A = Varan_syscall.Args in
  let calls : (Sysno.t * A.t) list =
    [
      (Sysno.Uname, [| A.Buf_out 65 |]);
      (Sysno.Getrlimit, [| A.Int 7; A.Buf_out 16 |]);
      (Sysno.Getrusage, [| A.Int 0; A.Buf_out 16 |]);
      (Sysno.Times, [| A.Buf_out 16 |]);
      (Sysno.Umask, [| A.Int 0o027 |]);
      (Sysno.Setsid, [||]);
      (Sysno.Sched_yield, [||]);
      (Sysno.Madvise, [| A.Int 0; A.Int 4096; A.Int 1 |]);
      (Sysno.Mprotect, [| A.Int 0; A.Int 4096; A.Int 5 |]);
      (Sysno.Brk, [| A.Int 0 |]);
      (Sysno.Getcpu, [| A.Buf_out 8 |]);
      (Sysno.Getppid, [||]);
    ]
  in
  let eng, k = mk_env () in
  let oks = Array.make 2 0 in
  let body i api =
    List.iter
      (fun (sysno, args) ->
        let r = api.Api.sys sysno args in
        if r.A.ret >= 0 then oks.(i) <- oks.(i) + 1)
      calls
  in
  let variants =
    List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check int) "leader all ok" (List.length calls) oks.(0);
  Alcotest.(check int) "follower all ok" (List.length calls) oks.(1)

(* ---- dynamic fork (Ev_fork, §3.3.3) ------------------------------------ *)

let test_fork_streams_new_tuple () =
  let eng, k = mk_env () in
  let n = 3 in
  let parent_obs = Array.make n "" in
  let child_obs = Array.make n "" in
  let child_pids = Array.make n 0 in
  let read_urandom api len =
    let fd = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
    let b = ok (Api.read api fd len) in
    ignore (ok (Api.close api fd));
    Bytes.to_string b
  in
  let body i api =
    parent_obs.(i) <- read_urandom api 8;
    let pid =
      Api.fork api (fun child_api ->
          child_obs.(i) <- read_urandom child_api 8)
    in
    child_pids.(i) <- pid;
    (* The parent tuple keeps streaming after the fork. *)
    parent_obs.(i) <- parent_obs.(i) ^ read_urandom api 4
  in
  let variants =
    List.init n (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch k variants in
  E.run_until_quiescent eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  for i = 1 to n - 1 do
    Alcotest.(check string)
      (Printf.sprintf "parent stream replayed in v%d" i)
      parent_obs.(0) parent_obs.(i);
    Alcotest.(check string)
      (Printf.sprintf "child stream replayed in v%d" i)
      child_obs.(0) child_obs.(i);
    Alcotest.(check int)
      (Printf.sprintf "child pid virtualised in v%d" i)
      child_pids.(0) child_pids.(i)
  done;
  Alcotest.(check bool) "children really observed something" true
    (String.length child_obs.(0) = 8)

let test_fork_nested () =
  let eng, k = mk_env () in
  let results = Array.make 2 "" in
  let body i api =
    ignore
      (Api.fork api (fun c1 ->
           ignore (Api.getuid c1);
           ignore
             (Api.fork c1 (fun c2 ->
                  let fd = ok (Api.openf c2 "/dev/urandom" Flags.o_rdonly) in
                  let b = ok (Api.read c2 fd 6) in
                  results.(i) <- Bytes.to_string b;
                  ignore (ok (Api.close c2 fd))))));
    ignore (Api.getpid api)
  in
  let variants =
    List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch k variants in
  E.run_until_quiescent eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  Alcotest.(check string) "grandchild replayed" results.(0) results.(1);
  Alcotest.(check int) "grandchild saw bytes" 6 (String.length results.(0))

let test_fork_native_hook () =
  let eng, k = mk_env () in
  let child_ran = ref false in
  let parent_pid = ref 0 and child_pid = ref 0 in
  let proc = K.new_proc k "p" in
  let tid =
    E.spawn eng (fun () ->
        let api = Api.direct k proc in
        parent_pid := Api.getpid api;
        child_pid :=
          Api.fork api (fun capi ->
              child_ran := true;
              Alcotest.(check bool) "child has its own pid" true
                (Api.getpid capi <> !parent_pid)))
  in
  K.register_task k proc tid;
  E.run_until_quiescent eng;
  Alcotest.(check bool) "child ran" true !child_ran;
  Alcotest.(check bool) "pid returned" true (!child_pid > 0)

let test_trace_under_monitor () =
  (* §3.1: tracing tooling keeps working on a monitored program. *)
  let eng, k = mk_env () in
  let body _i api =
    let fd = ok (Api.openf api "/dev/null" Flags.o_rdonly) in
    ignore (ok (Api.close api fd))
  in
  let config = { Config.default with Config.trace_first_variant = true } in
  let variants =
    List.init 2 (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i))
  in
  let session = Nvx.launch ~config k variants in
  E.run eng;
  let lines = Nvx.trace_lines session in
  Alcotest.(check bool) "trace captured" true (List.length lines >= 2);
  Alcotest.(check bool) "open traced" true
    (List.exists
       (fun l -> String.length l > 5 && String.sub l 0 5 = "open(")
       lines)

(* ---- scaling ----------------------------------------------------------- *)

let test_six_followers () =
  let eng, k = mk_env () in
  let n = 7 in
  let results = Array.make n "" in
  let body i api =
    let fd = ok (Api.openf api "/dev/urandom" Flags.o_rdonly) in
    for _ = 1 to 10 do
      let b = ok (Api.read api fd 8) in
      results.(i) <- results.(i) ^ Bytes.to_string b
    done;
    ignore (ok (Api.close api fd))
  in
  let variants = List.init n (fun i -> simple_variant (Printf.sprintf "v%d" i) (body i)) in
  let session = Nvx.launch k variants in
  E.run eng;
  Alcotest.(check int) "no crashes" 0 (List.length (Nvx.crashes session));
  for i = 1 to n - 1 do
    Alcotest.(check string)
      (Printf.sprintf "follower %d replayed" i)
      results.(0) results.(i)
  done

(* ---- the segmented catch-up tape ----------------------------------- *)

module Tape = Varan_nvx.Tape
module Event = Varan_ringbuf.Event
module RR = Varan_nvx.Record_replay

(* A deterministic event stream mixing inline-less calls, small results
   and large repetitive payloads (the RLE packer's best case) with
   incompressible ones (its worst case — literal runs must round-trip
   too). *)
let synthetic_event i =
  let out =
    match i mod 4 with
    | 0 -> None
    | 1 -> Some (Bytes.make (1 + (i mod 600)) 'z') (* long runs *)
    | 2 -> Some (Bytes.init (1 + (i mod 97)) (fun j -> Char.chr ((i + (j * 7)) land 0xff)))
    | _ -> Some Bytes.empty
  in
  let e =
    Event.make
      ~kind:(match i mod 16 with 15 -> Event.Ev_signal | _ -> Event.Ev_syscall)
      ~tid:(i mod 3)
      ~args:(Array.init (i mod 7) (fun j -> (i * 31) + j))
      ~ret:(i * 13)
      ~clock:(i + 1) (i mod 300)
  in
  (e, out)

let fill_tape tape n =
  for i = 0 to n - 1 do
    let e, out = synthetic_event i in
    Tape.append tape e ~out
  done

let check_entry i (en : Tape.entry) =
  let e, out = synthetic_event i in
  Alcotest.(check int) (Printf.sprintf "entry %d sysno" i) e.Event.sysno
    en.Tape.t_sysno;
  Alcotest.(check int) (Printf.sprintf "entry %d tid" i) e.Event.tid
    en.Tape.t_tid;
  Alcotest.(check int) (Printf.sprintf "entry %d ret" i) e.Event.ret
    en.Tape.t_ret;
  Alcotest.(check int) (Printf.sprintf "entry %d clock" i) e.Event.clock
    en.Tape.t_clock;
  Alcotest.(check (array int)) (Printf.sprintf "entry %d args" i) e.Event.args
    en.Tape.t_args;
  Alcotest.(check bool) (Printf.sprintf "entry %d kind" i) true
    (e.Event.kind = en.Tape.t_kind);
  Alcotest.(check (option bytes)) (Printf.sprintf "entry %d out" i) out
    en.Tape.t_out

(* Entries survive sealing and run-length packing byte-for-byte, read
   back both sequentially (cached segment) and at random (decode). *)
let test_tape_roundtrip_across_segments () =
  let tape = Tape.create () in
  let n = 1000 in
  fill_tape tape n;
  Alcotest.(check int) "length" n (Tape.length tape);
  Alcotest.(check int) "base" 0 (Tape.base tape);
  for i = 0 to n - 1 do
    check_entry i (Tape.get tape i)
  done;
  (* Random access order defeats the one-segment decode cache. *)
  List.iter (fun i -> check_entry i (Tape.get tape i)) [ 999; 0; 512; 255; 256; 770; 3 ];
  let st = Tape.stats tape in
  Alcotest.(check int) "segments sealed" (n / 256) st.Tape.segments_sealed;
  Alcotest.(check bool) "packing saves bytes" true
    (st.Tape.packed_bytes < st.Tape.raw_bytes)

(* Retirement truncates exactly at a segment boundary: keep_from rounds
   down to the segment start, never mid-segment; reads below the new
   base fail with [Truncated]; the window never re-grows. *)
let test_tape_retire_at_boundary () =
  let tape = Tape.create () in
  fill_tape tape 1000;
  (* keep_from exactly on a segment boundary *)
  Tape.retire tape ~keep_from:512;
  Alcotest.(check int) "base at the boundary" 512 (Tape.base tape);
  Alcotest.(check int) "length unchanged" 1000 (Tape.length tape);
  (match Tape.get tape 511 with
  | exception Tape.Truncated { requested; base } ->
    Alcotest.(check int) "reports the requested index" 511 requested;
    Alcotest.(check int) "and the surviving base" 512 base
  | _ -> Alcotest.fail "read below base must raise Truncated");
  check_entry 512 (Tape.get tape 512);
  (* keep_from mid-segment rounds down to its start *)
  Tape.retire tape ~keep_from:700;
  Alcotest.(check int) "mid-segment keep_from rounds down" 512
    (Tape.base tape);
  Tape.retire tape ~keep_from:768;
  Alcotest.(check int) "next boundary retires" 768 (Tape.base tape);
  (* monotone: retiring backwards is a no-op *)
  Tape.retire tape ~keep_from:0;
  Alcotest.(check int) "never re-grows" 768 (Tape.base tape);
  (* the open (unsealed) segment is never retired *)
  Tape.retire tape ~keep_from:1000;
  Alcotest.(check int) "open segment survives" 768 (Tape.base tape);
  check_entry 999 (Tape.get tape 999)

(* The acceptance bound: a million-event stream with checkpoint-driven
   retention holds a few recent segments, not the whole history. *)
let test_tape_bounded_memory_million_events () =
  let tape = Tape.create () in
  let n = 1_000_000 in
  for i = 0 to n - 1 do
    let e, out = synthetic_event (i mod 4096) in
    Tape.append tape e ~out;
    (* The retention floor a checkpointing session would maintain: keep
       roughly the last two thousand events. *)
    if i mod 4096 = 0 && i > 2048 then Tape.retire tape ~keep_from:(i - 2048)
  done;
  Alcotest.(check int) "million events appended" n (Tape.length tape);
  Alcotest.(check bool) "almost everything retired" true
    (Tape.base tape > n - 8192);
  let resident = Tape.resident_bytes tape in
  Alcotest.(check bool)
    (Printf.sprintf "resident bytes bounded (%d)" resident)
    true
    (resident < 2_000_000);
  let st = Tape.stats tape in
  Alcotest.(check bool) "thousands of segments retired" true
    (st.Tape.segments_retired > 3_000)

(* serialize_tape round trip (payload-bearing + retired-window cases):
   the encoded log decodes back to exactly the retained entries, and a
   torn log decodes to a clean [None] instead of crashing. *)
let test_serialize_tape_roundtrip () =
  let tape = Tape.create () in
  fill_tape tape 700;
  Tape.retire tape ~keep_from:256;
  let log = RR.serialize_tape tape in
  let cur = { RR.data = log; pos = 0 } in
  let decoded = ref [] in
  let rec drain () =
    match RR.deserialize cur with
    | Some r ->
      decoded := r :: !decoded;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "clean end of log" (Bytes.length log) cur.RR.pos;
  let decoded = Array.of_list (List.rev !decoded) in
  (* Only the retained window [256, 700) is encoded. *)
  Alcotest.(check int) "retained entries decoded" (700 - 256)
    (Array.length decoded);
  Array.iteri
    (fun j (kind, tid, sysno, clock, ret, args, out) ->
      let i = 256 + j in
      let e, eout = synthetic_event i in
      Alcotest.(check bool) (Printf.sprintf "rec %d kind" i) true
        (kind = e.Event.kind);
      Alcotest.(check int) (Printf.sprintf "rec %d tid" i) e.Event.tid tid;
      Alcotest.(check int) (Printf.sprintf "rec %d sysno" i) e.Event.sysno sysno;
      Alcotest.(check int) (Printf.sprintf "rec %d clock" i) e.Event.clock clock;
      Alcotest.(check int) (Printf.sprintf "rec %d ret" i) e.Event.ret ret;
      Alcotest.(check (array int)) (Printf.sprintf "rec %d args" i) e.Event.args
        args;
      Alcotest.(check bytes) (Printf.sprintf "rec %d out" i)
        (match eout with Some b -> b | None -> Bytes.empty)
        out)
    decoded;
  (* Torn logs: every truncation point decodes what is whole, then
     returns None with the cursor parked before the torn record. *)
  List.iter
    (fun cut ->
      let torn = Bytes.sub log 0 cut in
      let cur = { RR.data = torn; pos = 0 } in
      let rec count n = match RR.deserialize cur with
        | Some _ -> count (n + 1)
        | None -> n
      in
      let n = count 0 in
      Alcotest.(check bool)
        (Printf.sprintf "cut at %d decodes a prefix" cut)
        true
        (n <= 700 - 256);
      Alcotest.(check bool)
        (Printf.sprintf "cut at %d leaves the cursor on the torn record" cut)
        true (cur.RR.pos <= cut))
    [ 1; 7; 23; Bytes.length log - 1; Bytes.length log - 9 ];
  (* An empty tape serializes to an empty log. *)
  Alcotest.(check int) "empty tape, empty log" 0
    (Bytes.length (RR.serialize_tape (Tape.create ())))

(* ---- the connection router (sharded serving layer) ------------------ *)

module Router = Varan_nvx.Router

let test_router_sticky_and_spread () =
  let r = Router.create ~shards:4 () in
  let assign = List.init 500 (fun c -> (c, Router.route r ~conn:c)) in
  (* Re-routing never moves a connection while its shard stays healthy. *)
  List.iter
    (fun (c, s) ->
      Alcotest.(check int)
        (Printf.sprintf "conn %d sticky" c)
        s (Router.route r ~conn:c))
    assign;
  let st = Router.stats r in
  Alcotest.(check int) "distinct assignments" 500 st.Router.assigned;
  Alcotest.(check int) "no drains while healthy" 0 st.Router.drained;
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d got connections" i)
        true (n > 0))
    st.Router.per_shard;
  (* The seed perturbs placement — distinct pools hash differently. *)
  let r2 = Router.create ~seed:99 ~shards:4 () in
  Alcotest.(check bool) "seed perturbs placement" true
    (List.exists (fun (c, s) -> Router.route r2 ~conn:c <> s) assign)

let test_router_rebalance_on_degradation () =
  let r = Router.create ~shards:3 () in
  let before = List.init 300 (fun c -> (c, Router.route r ~conn:c)) in
  let on_sick = List.filter (fun (_, s) -> s = 1) before in
  Alcotest.(check bool) "case has conns to drain" true (on_sick <> []);
  Router.set_healthy r 1 false;
  let moved = Router.rebalance r in
  Alcotest.(check int) "rebalance drains exactly shard 1's conns"
    (List.length on_sick) moved;
  List.iter
    (fun (c, s) ->
      let s' = Router.route r ~conn:c in
      if s = 1 then
        Alcotest.(check bool)
          (Printf.sprintf "conn %d re-homed off the degraded shard" c)
          true (s' <> 1)
      else
        Alcotest.(check int)
          (Printf.sprintf "conn %d on a healthy shard untouched" c)
          s s')
    before;
  let st = Router.stats r in
  Alcotest.(check int) "drains counted" (List.length on_sick) st.Router.drained;
  Alcotest.(check int) "no live assignment on the degraded shard" 0
    st.Router.per_shard.(1);
  (* Recovery: drained connections stay where they went (stickiness
     wins), fresh connections can land on the recovered shard again. *)
  Router.set_healthy r 1 true;
  List.iter
    (fun (c, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "conn %d stays put after recovery" c)
        true
        (Router.route r ~conn:c <> 1))
    on_sick;
  let fresh = List.init 500 (fun i -> Router.route r ~conn:(10_000 + i)) in
  Alcotest.(check bool) "fresh conns reach the recovered shard" true
    (List.mem 1 fresh)

let test_router_all_down_and_forget () =
  let r = Router.create ~shards:2 () in
  Router.set_healthy r 0 false;
  Router.set_healthy r 1 false;
  let s = Router.route r ~conn:42 in
  Alcotest.(check bool) "all-down falls back to the primary hash shard" true
    (s = 0 || s = 1);
  Router.set_healthy r 0 true;
  Router.set_healthy r 1 true;
  let before = (Router.stats r).Router.per_shard in
  Router.forget r ~conn:42;
  let after = (Router.stats r).Router.per_shard in
  Alcotest.(check int) "forget drops the live assignment"
    (before.(0) + before.(1) - 1)
    (after.(0) + after.(1))

let () =
  Alcotest.run "varan_nvx"
    [
      ( "streaming",
        [
          Alcotest.test_case "followers replay results" `Quick
            test_followers_replay_results;
          Alcotest.test_case "time virtualised" `Quick test_time_virtualised;
          Alcotest.test_case "fd tables aligned" `Quick
            test_fd_tables_stay_aligned;
          Alcotest.test_case "write results replayed" `Quick
            test_write_results_replayed;
          Alcotest.test_case "only leader touches files" `Quick
            test_only_leader_touches_files;
          Alcotest.test_case "six followers" `Quick test_six_followers;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "no rules kills follower" `Quick
            test_divergence_without_rules_kills_follower;
          Alcotest.test_case "addition rule" `Quick
            test_divergence_addition_rule;
          Alcotest.test_case "removal rule" `Quick
            test_divergence_removal_rule;
          Alcotest.test_case "coalescing" `Quick test_divergence_coalescing;
          Alcotest.test_case "coalescing reverse" `Quick
            test_divergence_coalescing_reverse;
        ] );
      ( "failover",
        [
          Alcotest.test_case "leader crash" `Quick test_failover_leader_crash;
          Alcotest.test_case "follower crash no disruption" `Quick
            test_failover_follower_crash_no_disruption;
        ] );
      ( "multi",
        [
          Alcotest.test_case "threads with clock ordering" `Quick
            test_multithreaded_clock_ordering;
          Alcotest.test_case "futex coordination" `Quick
            test_futex_coordination_streams;
          Alcotest.test_case "simulation deterministic" `Quick
            test_simulation_deterministic;
          Alcotest.test_case "processes with separate rings" `Quick
            test_multiprocess_separate_rings;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "table override" `Quick
            test_syscall_table_override;
          Alcotest.test_case "vdso counted" `Quick test_vdso_dispatch_counted;
          Alcotest.test_case "stub syscalls" `Quick test_stub_syscalls_succeed;
          Alcotest.test_case "strace under monitor" `Quick
            test_trace_under_monitor;
        ] );
      ( "fork",
        [
          Alcotest.test_case "streams new tuple" `Quick
            test_fork_streams_new_tuple;
          Alcotest.test_case "nested forks" `Quick test_fork_nested;
          Alcotest.test_case "native hook" `Quick test_fork_native_hook;
        ] );
      ( "signals",
        [
          Alcotest.test_case "streamed to followers" `Quick
            test_signal_streamed_to_followers;
          Alcotest.test_case "native boundary delivery" `Quick
            test_signal_native_delivery;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "failover chain" `Quick
            test_failover_chain_two_crashes;
          Alcotest.test_case "failover cascade x7" `Quick
            test_failover_cascade_seven_crashes;
          Alcotest.test_case "payload chunks freed" `Quick
            test_pool_payloads_freed;
          Alcotest.test_case "exit_group streamed" `Quick
            test_exit_group_streams_to_followers;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "event pump" `Quick test_event_pump_mode_equivalent;
          Alcotest.test_case "trap only" `Quick test_trap_only_mode_equivalent;
          Alcotest.test_case "busy wait" `Quick test_busy_wait_mode_equivalent;
          Alcotest.test_case "ring size 1" `Quick test_tiny_ring_still_correct;
        ] );
      ( "router",
        [
          Alcotest.test_case "sticky hashing spreads the pool" `Quick
            test_router_sticky_and_spread;
          Alcotest.test_case "rebalance on shard degradation" `Quick
            test_router_rebalance_on_degradation;
          Alcotest.test_case "all-down fallback and forget" `Quick
            test_router_all_down_and_forget;
        ] );
      ( "tape",
        [
          Alcotest.test_case "roundtrip across sealed segments" `Quick
            test_tape_roundtrip_across_segments;
          Alcotest.test_case "retire truncates at segment boundary" `Quick
            test_tape_retire_at_boundary;
          Alcotest.test_case "bounded memory on a million events" `Slow
            test_tape_bounded_memory_million_events;
          Alcotest.test_case "serialize_tape round trip" `Quick
            test_serialize_tape_roundtrip;
        ] );
    ]

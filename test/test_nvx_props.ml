(* End-to-end property test of the NVX core: random syscall programs are
   executed natively and under VARAN with several followers; every
   observable result (return values, bytes read, clock values — everything
   except pids) must be identical in the native run, the leader and every
   follower. This is the semantic heart of N-version execution: the
   monitor makes N processes behave as one.

   The program language and interpreter live in Gen_programs, shared with
   the fault-injection torture suite (test_fault). *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Prng = Varan_util.Prng
module P = Gen_programs

let run_nvx ~kernel_seed ~followers ~config ops =
  let eng = E.create () in
  let k = K.create ~seed:kernel_seed eng in
  let n = followers + 1 in
  let obs = Array.init n (fun _ -> P.observations ()) in
  let variants =
    List.init n (fun i ->
        Variant.make
          (Printf.sprintf "v%d" i)
          (Variant.single (fun api -> P.interpret ~obs:obs.(i) ~path:"0" ops api)))
  in
  let session = Nvx.launch ~config k variants in
  E.run_until_quiescent eng;
  (Array.map P.digest obs, Nvx.crashes session)

let arb_program =
  QCheck.make
    ~print:(fun (seed, len) -> Printf.sprintf "seed=%d len=%d" seed len)
    QCheck.Gen.(pair (int_bound 1_000_000) (int_range 5 60))

let equivalence_prop ~config ~followers (seed, len) =
  let ops = P.gen_ops (Prng.create seed) len in
  let native = P.run_native ~kernel_seed:seed ops in
  let outs, crashes = run_nvx ~kernel_seed:seed ~followers ~config ops in
  crashes = []
  && Array.for_all (fun o -> o = native) outs
  && String.length native > 0

let prop_nvx_matches_native =
  QCheck.Test.make ~name:"NVX(2 followers) == native, observably" ~count:120
    arb_program
    (equivalence_prop ~config:Config.default ~followers:2)

let prop_nvx_matches_native_busy_wait =
  QCheck.Test.make ~name:"busy-wait config equivalent" ~count:40 arb_program
    (equivalence_prop
       ~config:{ Config.default with Config.follower_wait = Config.Busy_wait }
       ~followers:1)

let prop_nvx_matches_native_pump =
  QCheck.Test.make ~name:"event-pump config equivalent" ~count:40 arb_program
    (equivalence_prop
       ~config:{ Config.default with Config.streaming = Config.Event_pump }
       ~followers:2)

let prop_nvx_matches_native_tiny_ring =
  QCheck.Test.make ~name:"single-slot ring equivalent" ~count:40 arb_program
    (equivalence_prop
       ~config:(Config.with_ring_size Config.default 1)
       ~followers:1)

let prop_nvx_matches_native_trap_only =
  QCheck.Test.make ~name:"trap-only interception equivalent" ~count:40
    arb_program
    (equivalence_prop
       ~config:{ Config.default with Config.interception = Config.Trap_only }
       ~followers:1)

let () =
  Alcotest.run "varan_nvx_props"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_nvx_matches_native;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_busy_wait;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_pump;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_tiny_ring;
          QCheck_alcotest.to_alcotest prop_nvx_matches_native_trap_only;
        ] );
    ]

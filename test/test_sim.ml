(* Tests for the discrete-event engine: virtual time, ordering, condition
   variables, timeouts, kill semantics and deadlock detection. *)

module E = Varan_sim.Engine

let test_consume_advances_time () =
  let eng = E.create () in
  let final = ref 0L in
  ignore
    (E.spawn eng ~name:"a" (fun () ->
         E.consume 100;
         E.consume 50;
         final := E.now_cycles ()));
  E.run eng;
  Alcotest.(check int64) "local time" 150L !final;
  Alcotest.(check int64) "global time" 150L (E.now eng)

let test_zero_consume_is_free () =
  let eng = E.create () in
  ignore (E.spawn eng (fun () -> E.consume 0));
  E.run eng;
  Alcotest.(check int64) "no time passes" 0L (E.now eng)

let test_interleaving_by_time () =
  let eng = E.create () in
  let log = ref [] in
  let emit tag = log := tag :: !log in
  ignore
    (E.spawn eng ~name:"slow" (fun () ->
         E.consume 100;
         emit "slow1";
         E.consume 100;
         emit "slow2"));
  ignore
    (E.spawn eng ~name:"fast" (fun () ->
         E.consume 30;
         emit "fast1";
         E.consume 30;
         emit "fast2"));
  E.run eng;
  Alcotest.(check (list string))
    "events ordered by virtual time"
    [ "fast1"; "fast2"; "slow1"; "slow2" ]
    (List.rev !log)

let test_fifo_tie_break () =
  let eng = E.create () in
  let log = ref [] in
  ignore (E.spawn eng ~name:"first" (fun () -> log := "first" :: !log));
  ignore (E.spawn eng ~name:"second" (fun () -> log := "second" :: !log));
  E.run eng;
  Alcotest.(check (list string))
    "creation order on ties" [ "first"; "second" ] (List.rev !log)

let test_sleep () =
  let eng = E.create () in
  let woke = ref 0L in
  ignore
    (E.spawn eng (fun () ->
         E.consume 10;
         E.sleep 90;
         woke := E.now_cycles ()));
  E.run eng;
  Alcotest.(check int64) "sleep adds to clock" 100L !woke

let test_cond_signal () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let wake_time = ref 0L in
  ignore
    (E.spawn eng ~name:"waiter" (fun () ->
         E.Cond.wait c;
         wake_time := E.now_cycles ()));
  ignore
    (E.spawn eng ~name:"signaller" (fun () ->
         E.consume 500;
         E.Cond.signal c));
  E.run eng;
  Alcotest.(check int64) "woken at signaller's time" 500L !wake_time

let test_cond_broadcast () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let count = ref 0 in
  for _ = 1 to 5 do
    ignore
      (E.spawn eng (fun () ->
           E.Cond.wait c;
           incr count))
  done;
  ignore
    (E.spawn eng (fun () ->
         E.consume 10;
         E.Cond.broadcast c));
  E.run eng;
  Alcotest.(check int) "all woken" 5 !count

let test_cond_signal_wakes_one () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let count = ref 0 in
  for _ = 1 to 3 do
    ignore
      (E.spawn eng (fun () ->
           E.Cond.wait c;
           incr count))
  done;
  ignore
    (E.spawn eng (fun () ->
         E.consume 10;
         E.Cond.signal c));
  E.run_until_quiescent eng;
  Alcotest.(check int) "exactly one woken" 1 !count;
  Alcotest.(check int) "two still waiting" 2 (E.Cond.waiters c)

let test_wait_timeout_expires () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let result = ref true in
  let woke = ref 0L in
  ignore
    (E.spawn eng (fun () ->
         result := E.Cond.wait_timeout c 250;
         woke := E.now_cycles ()));
  E.run eng;
  Alcotest.(check bool) "timed out" false !result;
  Alcotest.(check int64) "at deadline" 250L !woke

let test_wait_timeout_signalled () =
  let eng = E.create () in
  let c = E.Cond.create "c" in
  let result = ref false in
  ignore (E.spawn eng (fun () -> result := E.Cond.wait_timeout c 1_000));
  ignore
    (E.spawn eng (fun () ->
         E.consume 100;
         E.Cond.signal c));
  E.run eng;
  Alcotest.(check bool) "signalled before deadline" true !result

let test_deadlock_detection () =
  let eng = E.create () in
  let c = E.Cond.create "never" in
  ignore (E.spawn eng ~name:"stuck" (fun () -> E.Cond.wait c));
  match E.run eng with
  | () -> Alcotest.fail "expected Deadlock"
  | exception E.Deadlock names ->
    Alcotest.(check (list string)) "stuck task reported" [ "stuck" ] names

let test_kill_blocked_task () =
  let eng = E.create () in
  let c = E.Cond.create "never" in
  let cleaned = ref false in
  let victim =
    E.spawn eng ~name:"victim" (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> E.Cond.wait c))
  in
  ignore
    (E.spawn eng ~name:"killer" (fun () ->
         E.consume 10;
         E.kill_here victim));
  E.run eng;
  Alcotest.(check bool) "finally ran on kill" true !cleaned;
  Alcotest.(check bool) "victim dead" false (E.is_alive eng victim)

let test_kill_running_task () =
  let eng = E.create () in
  let reached = ref false in
  let vid =
    E.spawn eng ~name:"victim" (fun () ->
        E.consume 10;
        E.consume 10;
        reached := true)
  in
  ignore
    (E.spawn eng ~name:"killer" (fun () ->
         E.consume 5;
         E.kill_here vid));
  E.run eng;
  Alcotest.(check bool) "victim never finished body" false !reached

let test_kill_not_started () =
  let eng = E.create () in
  let ran = ref false in
  let vid = E.spawn eng ~name:"victim" (fun () -> ran := true) in
  E.kill eng vid;
  E.run eng;
  Alcotest.(check bool) "never ran" false !ran

let test_spawn_here_inherits_time () =
  let eng = E.create () in
  let child_time = ref 0L in
  ignore
    (E.spawn eng (fun () ->
         E.consume 1234;
         ignore
           (E.spawn_here ~name:"child" (fun () ->
                child_time := E.now_cycles ()))));
  E.run eng;
  Alcotest.(check int64) "child starts at parent's time" 1234L !child_time

let test_failure_recorded () =
  let eng = E.create () in
  ignore (E.spawn eng ~name:"boom" (fun () -> failwith "boom"));
  E.run eng;
  match E.failures eng with
  | [ (_, Failure msg) ] -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected exactly one failure"

let test_yield_fairness () =
  let eng = E.create () in
  let log = ref [] in
  let task tag =
    E.spawn eng ~name:tag (fun () ->
        for _ = 1 to 2 do
          log := tag :: !log;
          E.yield ()
        done)
  in
  ignore (task "a");
  ignore (task "b");
  E.run eng;
  Alcotest.(check (list string))
    "round-robin at equal time"
    [ "a"; "b"; "a"; "b" ]
    (List.rev !log)

(* --- scheduler edge cases ------------------------------------------- *)

(* Killing a task whose continuation entry sits on the ready ring (it
   yielded at the current vtime) must discard the entry, unwind the
   fiber through its [finally] handlers, and leave the engine able to
   finish cleanly. *)
let test_kill_on_ready_ring () =
  let eng = E.create () in
  let runs = ref 0 in
  let cleaned = ref false in
  let victim = ref None in
  ignore
    (E.spawn eng ~name:"killer" (fun () ->
         E.yield ();
         (* The victim has run once and is parked on the ready ring at
            this same virtual time. *)
         match !victim with
         | Some vid -> E.kill_here vid
         | None -> Alcotest.fail "victim not spawned"));
  victim :=
    Some
      (E.spawn eng ~name:"victim" (fun () ->
           Fun.protect
             ~finally:(fun () -> cleaned := true)
             (fun () ->
               while true do
                 incr runs;
                 E.yield ()
               done)));
  E.run eng;
  Alcotest.(check int) "victim ran exactly once before the kill" 1 !runs;
  Alcotest.(check bool) "finally ran on ring-queued kill" true !cleaned;
  Alcotest.(check bool) "victim dead"
    false
    (E.is_alive eng (Option.get !victim))

(* A ticker that deactivates (returns [false]) while the engine is
   draining several ticker deadlines crossed by one large time jump must
   stop firing permanently, and the cached earliest-deadline must be
   recomputed so other tickers keep firing at their own periods. *)
let test_ticker_deactivates_mid_drain () =
  let eng = E.create () in
  let a_fires = ref [] in
  let b_fires = ref [] in
  E.add_ticker eng ~period:100 (fun () ->
      a_fires := E.now eng :: !a_fires;
      List.length !a_fires < 3);
  E.add_ticker eng ~period:250 (fun () ->
      b_fires := E.now eng :: !b_fires;
      true);
  (* A single sleep jumps virtual time across every deadline at once. *)
  ignore (E.spawn eng (fun () -> E.sleep 1050));
  E.run eng;
  Alcotest.(check (list int64))
    "fast ticker fires thrice then deactivates"
    [ 100L; 200L; 300L ]
    (List.rev !a_fires);
  Alcotest.(check (list int64))
    "slow ticker unaffected by the deactivation"
    [ 250L; 500L; 750L; 1000L ]
    (List.rev !b_fires)

(* Deadline-vs-signal race at the same virtual time. The deadline entry
   is scheduled when the wait starts; the signal wake is scheduled when
   the signaller runs. On an exact vtime tie the (etime, eseq) order
   decides: whichever entry was scheduled first wins, so the outcome
   flips with spawn order — but each interleaving is deterministic. *)
let test_timeout_vs_signal_same_vtime () =
  let outcome ~waiter_first =
    let eng = E.create () in
    let c = E.Cond.create "race" in
    let result = ref None in
    let waiter () =
      ignore
        (E.spawn eng ~name:"waiter" (fun () ->
             result := Some (E.Cond.wait_timeout c 100)))
    in
    let signaller () =
      ignore
        (E.spawn eng ~name:"signaller" (fun () ->
             E.consume 100;
             E.Cond.signal c))
    in
    if waiter_first then (
      waiter ();
      signaller ())
    else (
      signaller ();
      waiter ());
    E.run eng;
    match !result with
    | Some r -> r
    | None -> Alcotest.fail "waiter never resolved"
  in
  Alcotest.(check bool)
    "waiter first: its deadline entry wins the tie (timed out)"
    false
    (outcome ~waiter_first:true);
  Alcotest.(check bool)
    "signaller first: its wake wins the tie (signalled)"
    true
    (outcome ~waiter_first:false)

(* 200-seed equivalence against a naive sorted-list scheduler — the
   shape the engine had before the ready-ring/heap rewrite. Random task
   programs over consume/sleep/yield (with zero-cost ops for heavy tie
   pressure) must produce the identical completion log under both,
   proving the (etime, eseq) dispatch order survived the overhaul. *)
type ref_op = R_consume of int | R_sleep of int | R_yield

let reference_schedule programs =
  (* Entries are (time, seq, task index); pop always takes the
     (time, seq)-minimum, mirroring the engine's tie-break. The log
     records each op at the vtime its post-effect resumption runs. *)
  let seq = ref 0 in
  let next_seq () =
    let s = !seq in
    incr seq;
    s
  in
  let entries = ref [] in
  let push time s i = entries := (time, s, i) :: !entries in
  let pop_min () =
    match !entries with
    | [] -> None
    | first :: rest ->
      let best =
        List.fold_left
          (fun ((bt, bs, _) as b) ((t, s, _) as e) ->
            if t < bt || (t = bt && s < bs) then e else b)
          first rest
      in
      entries := List.filter (fun e -> e != best) !entries;
      Some best
  in
  let ops = Array.of_list programs in
  let n = Array.length ops in
  let idx = Array.make n 0 in
  let log = ref [] in
  for i = 0 to n - 1 do
    push 0 (next_seq ()) i
  done;
  let rec run () =
    match pop_min () with
    | None -> ()
    | Some (time, _, i) ->
      if idx.(i) > 0 then log := (i, idx.(i) - 1, time) :: !log;
      (* The task runs until its next real effect point. [consume 0] is
         a documented no-op — no effect is performed, so the op logs
         immediately within the same dispatch instead of rescheduling
         (sleep and yield always reschedule, even at zero cost). *)
      let scheduled = ref false in
      while (not !scheduled) && idx.(i) < Array.length ops.(i) do
        (match ops.(i).(idx.(i)) with
        | R_consume 0 -> log := (i, idx.(i), time) :: !log
        | R_consume d | R_sleep d ->
          push (time + d) (next_seq ()) i;
          scheduled := true
        | R_yield ->
          push time (next_seq ()) i;
          scheduled := true);
        idx.(i) <- idx.(i) + 1
      done;
      run ()
  in
  run ();
  List.rev !log

let engine_schedule programs =
  let eng = E.create () in
  let log = ref [] in
  List.iteri
    (fun i ops ->
      ignore
        (E.spawn eng ~name:(Printf.sprintf "t%d" i) (fun () ->
             Array.iteri
               (fun j op ->
                 (match op with
                 | R_consume d -> E.consume d
                 | R_sleep d -> E.sleep d
                 | R_yield -> E.yield ());
                 log := (i, j, Int64.to_int (E.now_cycles ())) :: !log)
               ops)))
    programs;
  E.run eng;
  List.rev !log

let gen_program rng =
  let n_ops = 4 + Random.State.int rng 12 in
  Array.init n_ops (fun _ ->
      match Random.State.int rng 10 with
      | 0 | 1 | 2 | 3 -> R_consume (Random.State.int rng 31)
      | 4 | 5 -> R_consume 0 (* force vtime ties *)
      | 6 | 7 -> R_sleep (Random.State.int rng 51)
      | _ -> R_yield)

let test_schedule_equivalence () =
  for seed = 0 to 199 do
    let rng = Random.State.make [| 0x5EED; seed |] in
    let n_tasks = 2 + Random.State.int rng 5 in
    let programs = List.init n_tasks (fun _ -> gen_program rng) in
    let expected = reference_schedule programs in
    let actual = engine_schedule programs in
    if expected <> actual then
      Alcotest.failf
        "seed %d: engine dispatch order diverged from the reference \
         scheduler (%d vs %d events)"
        seed
        (List.length actual)
        (List.length expected)
  done

let test_many_tasks_scale () =
  let eng = E.create () in
  let total = ref 0 in
  for i = 1 to 1000 do
    ignore
      (E.spawn eng (fun () ->
           E.consume i;
           incr total))
  done;
  E.run eng;
  Alcotest.(check int) "all tasks ran" 1000 !total;
  Alcotest.(check int64) "time is max consume" 1000L (E.now eng)

let () =
  Alcotest.run "varan_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "consume advances time" `Quick
            test_consume_advances_time;
          Alcotest.test_case "zero consume free" `Quick
            test_zero_consume_is_free;
          Alcotest.test_case "interleaving by time" `Quick
            test_interleaving_by_time;
          Alcotest.test_case "fifo tie break" `Quick test_fifo_tie_break;
          Alcotest.test_case "sleep" `Quick test_sleep;
          Alcotest.test_case "many tasks" `Quick test_many_tasks_scale;
          Alcotest.test_case "spawn_here inherits time" `Quick
            test_spawn_here_inherits_time;
          Alcotest.test_case "failure recorded" `Quick test_failure_recorded;
          Alcotest.test_case "yield fairness" `Quick test_yield_fairness;
        ] );
      ( "cond",
        [
          Alcotest.test_case "signal wakes at signaller time" `Quick
            test_cond_signal;
          Alcotest.test_case "broadcast wakes all" `Quick test_cond_broadcast;
          Alcotest.test_case "signal wakes one" `Quick
            test_cond_signal_wakes_one;
          Alcotest.test_case "wait_timeout expires" `Quick
            test_wait_timeout_expires;
          Alcotest.test_case "wait_timeout signalled" `Quick
            test_wait_timeout_signalled;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "deadlock detection" `Quick
            test_deadlock_detection;
          Alcotest.test_case "kill blocked task" `Quick test_kill_blocked_task;
          Alcotest.test_case "kill running task" `Quick test_kill_running_task;
          Alcotest.test_case "kill before start" `Quick test_kill_not_started;
        ] );
      ( "edge",
        [
          Alcotest.test_case "kill while queued on ready ring" `Quick
            test_kill_on_ready_ring;
          Alcotest.test_case "ticker deactivation mid-drain" `Quick
            test_ticker_deactivates_mid_drain;
          Alcotest.test_case "timeout vs signal at same vtime" `Quick
            test_timeout_vs_signal_same_vtime;
          Alcotest.test_case "200-seed equivalence vs list scheduler" `Quick
            test_schedule_equivalence;
        ] );
    ]

(* Tests for the shared-memory pool, the Disruptor ring buffer, Lamport
   clocks and the BPF engine (verifier, interpreter, assembler, rules). *)

module E = Varan_sim.Engine
module Pool = Varan_shmem.Pool
module Ring = Varan_ringbuf.Ring
module Event = Varan_ringbuf.Event
module Lamport = Varan_vclock.Lamport
module Bi = Varan_bpf.Insn
module Verifier = Varan_bpf.Verifier
module Interp = Varan_bpf.Interp
module Asm = Varan_bpf.Asm
module Rules = Varan_bpf.Rules

(* --- pool ------------------------------------------------------------ *)

let test_pool_alloc_free () =
  let p = Pool.create () in
  let c = Pool.alloc p 100 in
  Alcotest.(check bool) "chunk live" true c.Pool.live;
  Alcotest.(check bool)
    "bucket rounds up to power of two" true
    (Pool.chunk_capacity p c >= 100);
  Pool.write c (Bytes.of_string "hello");
  Alcotest.(check string)
    "roundtrip" "hello"
    (Bytes.to_string (Pool.read c 5));
  Pool.free p c;
  let s = Pool.stats p in
  Alcotest.(check int) "allocs" 1 s.Pool.allocs;
  Alcotest.(check int) "frees" 1 s.Pool.frees;
  Alcotest.(check int) "no live chunks" 0 s.Pool.live_chunks

let test_pool_reuses_chunks () =
  let p = Pool.create () in
  let c1 = Pool.alloc p 64 in
  let addr = c1.Pool.addr in
  Pool.free p c1;
  let c2 = Pool.alloc p 64 in
  Alcotest.(check int) "free list reuse" addr c2.Pool.addr;
  let s = Pool.stats p in
  Alcotest.(check int) "one segment" 1 s.Pool.segments_in_use

let test_pool_bucket_segregation () =
  let p = Pool.create () in
  let small = Pool.alloc p 64 in
  let big = Pool.alloc p 4096 in
  Alcotest.(check bool)
    "separate buckets" true
    (small.Pool.bucket <> big.Pool.bucket);
  let s = Pool.stats p in
  Alcotest.(check int) "two segments" 2 s.Pool.segments_in_use

let test_pool_double_free_rejected () =
  let p = Pool.create () in
  let c = Pool.alloc p 64 in
  Pool.free p c;
  match Pool.free p c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected double-free rejection"

let test_pool_exhaustion () =
  let p = Pool.create ~pool_bytes:65536 ~segment_bytes:65536 () in
  (* One segment of 64 KiB split into 1 KiB chunks: 64 allocs succeed. *)
  for _ = 1 to 64 do
    ignore (Pool.alloc p 1024)
  done;
  match Pool.alloc p 1024 with
  | exception Pool.Out_of_memory -> ()
  | _ -> Alcotest.fail "expected Out_of_memory"

let test_pool_oversized_alloc () =
  let p = Pool.create () in
  match Pool.alloc p (1 lsl 30) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- ring ------------------------------------------------------------- *)

let test_ring_publish_consume () =
  let eng = E.create () in
  let r = Ring.create ~size:8 "test" in
  let got = ref [] in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 1 to 20 do
           E.consume 10;
           Ring.publish r i
         done));
  ignore
    (E.spawn eng ~name:"consumer" (fun () ->
         for _ = 1 to 20 do
           got := Ring.consume r cid :: !got
         done));
  E.run eng;
  Alcotest.(check (list int))
    "in order, none lost"
    (List.init 20 (fun i -> i + 1))
    (List.rev !got)

let test_ring_backpressure () =
  (* A slow consumer must stall the producer once the ring fills. *)
  let eng = E.create () in
  let r = Ring.create ~size:4 "bp" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 1 to 12 do
           Ring.publish r i
         done));
  ignore
    (E.spawn eng ~name:"slow-consumer" (fun () ->
         for _ = 1 to 12 do
           E.consume 1_000;
           ignore (Ring.consume r cid)
         done));
  E.run eng;
  let s = Ring.stats r in
  Alcotest.(check bool) "producer stalled" true (s.Ring.producer_stalls > 0);
  Alcotest.(check int) "all consumed" 12 s.Ring.consumes

let test_ring_multiple_consumers_each_get_all () =
  let eng = E.create () in
  let r = Ring.create ~size:16 "multi" in
  let sums = Array.make 3 0 in
  let cids = Array.init 3 (fun _ -> Ring.add_consumer r) in
  Array.iteri
    (fun i cid ->
      ignore
        (E.spawn eng ~name:(Printf.sprintf "consumer%d" i) (fun () ->
             for _ = 1 to 10 do
               sums.(i) <- sums.(i) + Ring.consume r cid
             done)))
    cids;
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for v = 1 to 10 do
           E.consume 5;
           Ring.publish r v
         done));
  E.run eng;
  Array.iteri
    (fun i sum -> Alcotest.(check int) (Printf.sprintf "consumer %d" i) 55 sum)
    sums

let test_ring_remove_consumer_unblocks_producer () =
  let eng = E.create () in
  let r = Ring.create ~size:2 "crash" in
  let dead = Ring.add_consumer r in
  let live = Ring.add_consumer r in
  let produced = ref 0 in
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 1 to 6 do
           Ring.publish r i;
           produced := i
         done));
  ignore
    (E.spawn eng ~name:"live-consumer" (fun () ->
         for _ = 1 to 6 do
           ignore (Ring.consume r live)
         done));
  (* The dead consumer never reads; unsubscribe it shortly after start,
     as the coordinator does when a follower crashes. *)
  ignore
    (E.spawn eng ~name:"coordinator" (fun () ->
         E.consume 100;
         Ring.remove_consumer r dead));
  E.run eng;
  Alcotest.(check int) "producer finished" 6 !produced

let test_ring_lag () =
  let eng = E.create () in
  let r = Ring.create ~size:64 "lag" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         for i = 1 to 10 do
           Ring.publish r i
         done;
         Alcotest.(check int) "lag after 10 publishes" 10 (Ring.lag r cid);
         ignore (Ring.consume r cid);
         ignore (Ring.consume r cid);
         Alcotest.(check int) "lag after 2 consumes" 8 (Ring.lag r cid)));
  E.run eng

let test_ring_try_variants () =
  let eng = E.create () in
  let r = Ring.create ~size:2 "try" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         Alcotest.(check bool) "consume on empty" true (Ring.try_consume r cid = None);
         Alcotest.(check bool) "publish ok" true (Ring.try_publish r 1);
         Alcotest.(check bool) "publish ok" true (Ring.try_publish r 2);
         Alcotest.(check bool) "publish full" false (Ring.try_publish r 3);
         Alcotest.(check bool) "peek" true (Ring.peek r cid = Some 1);
         Alcotest.(check bool) "consume" true (Ring.try_consume r cid = Some 1);
         Alcotest.(check bool) "now room" true (Ring.try_publish r 3)));
  E.run eng

let test_ring_try_publish_stalled_consumer () =
  let eng = E.create () in
  let r = Ring.create ~size:4 "stalled" in
  let stalled = Ring.add_consumer r in
  let live = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         for i = 1 to 4 do
           Alcotest.(check bool) "room" true (Ring.try_publish r i)
         done;
         Alcotest.(check bool) "full" false (Ring.try_publish r 5);
         (* The live consumer drains, but the stalled cursor still pins
            every slot: the publisher must keep failing. *)
         for i = 1 to 4 do
           Alcotest.(check bool) "live reads" true
             (Ring.try_consume r live = Some i)
         done;
         Alcotest.(check bool) "still full" false (Ring.try_publish r 5);
         Alcotest.(check int) "stalled lag" 4 (Ring.lag r stalled);
         Alcotest.(check (list int))
           "unread preserved" [ 1; 2; 3; 4 ] (Ring.unread r stalled);
         (* Removing the stalled consumer frees all its slots at once —
            the publisher wraps the ring twice more without blocking. *)
         Ring.remove_consumer r stalled;
         for i = 5 to 12 do
           Alcotest.(check bool) "room again" true (Ring.try_publish r i);
           Alcotest.(check bool) "live reads on" true
             (Ring.try_consume r live = Some i)
         done;
         Alcotest.(check int) "published" 12 (Ring.published r)));
  E.run eng

let test_ring_wraparound_cursor_accounting () =
  let eng = E.create () in
  let r = Ring.create ~size:4 "wrap" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         (* Two full revolutions with interleaved reads: cursors are
            absolute sequence numbers, not slot indices. *)
         for i = 0 to 7 do
           Alcotest.(check bool) "publish" true (Ring.try_publish r i);
           Alcotest.(check int) "cursor trails head" i (Ring.cursor r cid);
           Alcotest.(check bool) "read back" true
             (Ring.try_consume r cid = Some i)
         done;
         Alcotest.(check int) "cursor caught up" 8 (Ring.cursor r cid);
         Alcotest.(check bool) "empty" true (Ring.try_consume r cid = None)));
  E.run eng

(* --- events ----------------------------------------------------------- *)

let test_event_sizing () =
  Alcotest.(check int) "cache line" 64 Event.event_bytes;
  let e = Event.make ~clock:1 ~args:[| 1; 2; 3 |] 42 in
  Alcotest.(check bool) "fits inline" true (Event.fits_inline e);
  match Event.make ~clock:1 ~args:(Array.make 7 0) 42 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seven args must be rejected"

(* --- lamport ----------------------------------------------------------- *)

let test_lamport_leader_follower () =
  let leader = Lamport.create () in
  let follower = Lamport.create () in
  let s1 = Lamport.tick leader in
  let s2 = Lamport.tick leader in
  Alcotest.(check (list int)) "timestamps" [ 1; 2 ] [ s1; s2 ];
  (* Follower must take s1 before s2. *)
  Alcotest.(check bool) "s2 too early" false (Lamport.try_advance follower s2);
  Alcotest.(check bool) "s1 ok" true (Lamport.try_advance follower s1);
  Alcotest.(check bool) "s2 now ok" true (Lamport.try_advance follower s2);
  Alcotest.(check bool) "replay rejected" false (Lamport.try_advance follower s2)

let test_lamport_force_on_promotion () =
  let c = Lamport.create () in
  Lamport.force c 41;
  Alcotest.(check int) "adopted position" 42 (Lamport.tick c)

(* --- bpf --------------------------------------------------------------- *)

let test_verifier_accepts_listing1 () =
  match Asm.assemble Rules.listing1 with
  | Ok prog -> (
    match Verifier.verify prog with
    | Ok () -> ()
    | Error m -> Alcotest.failf "verifier rejected listing1: %s" m)
  | Error m -> Alcotest.failf "assembly failed: %s" m

let test_verifier_rejects_empty_and_endless () =
  (match Verifier.verify [||] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty accepted");
  match Verifier.verify [| Bi.Ld_imm 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "no-ret accepted"

let test_verifier_rejects_out_of_range_jump () =
  let prog = [| Bi.Jeq (1, 5, 0); Bi.Ret_k 0 |] in
  match Verifier.verify prog with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range jump accepted"

let test_interp_arithmetic () =
  let prog =
    [| Bi.Ld_imm 40; Bi.Ldx_imm 2; Bi.Alu_add Bi.X; Bi.Ret_a |]
  in
  let out =
    Interp.run prog ~data:{ Interp.nr = 0; args = [||] } ~event:Interp.no_event
  in
  Alcotest.(check int) "40+2" 42 out.Interp.action;
  Alcotest.(check int) "steps" 4 out.Interp.steps

let test_interp_listing1_semantics () =
  let prog = Asm.assemble_exn Rules.listing1 in
  let run ~leader_nr ~follower_nr =
    (Interp.run prog
       ~data:{ Interp.nr = follower_nr; args = [||] }
       ~event:{ Interp.ev_nr = leader_nr; ev_ret = 0; ev_args = [||] })
      .Interp.action
  in
  (* Leader at getegid (108), follower inserting getuid (102): allowed. *)
  Alcotest.(check int) "getuid insertion" Bi.ret_allow
    (run ~leader_nr:108 ~follower_nr:102);
  (* Leader at open (2), follower inserting getgid (104): allowed. *)
  Alcotest.(check int) "getgid insertion" Bi.ret_allow
    (run ~leader_nr:2 ~follower_nr:104);
  (* Unknown leader event: killed. *)
  Alcotest.(check int) "unknown divergence" Bi.ret_kill
    (run ~leader_nr:1 ~follower_nr:102);
  (* The published filter falls through from the getegid check into the
     open check, so leader=getegid with follower=getgid is also allowed —
     the paper notes one could write a tighter filter using more context. *)
  Alcotest.(check int) "fall-through of the published filter" Bi.ret_allow
    (run ~leader_nr:108 ~follower_nr:104);
  Alcotest.(check int) "genuinely wrong follower call" Bi.ret_kill
    (run ~leader_nr:108 ~follower_nr:7)

let test_asm_errors () =
  (match Asm.assemble "frobnicate #1\nret #0" with
  | Error m ->
    Alcotest.(check bool) "line number" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "unknown mnemonic accepted");
  match Asm.assemble "start: jmp start\nret #0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "backward jump accepted"

let test_rules_added () =
  let prog =
    Rules.allow_added_syscalls ~expected_leader:[ 108; 2 ] ~added:[ 102; 104 ]
  in
  let run leader follower =
    Rules.verdict_of_action
      (Interp.run prog
         ~data:{ Interp.nr = follower; args = [||] }
         ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] })
        .Interp.action
  in
  Alcotest.(check bool) "insertion ok" true
    (run 108 102 = Rules.Execute_follower_call);
  Alcotest.(check bool) "insertion ok 2" true
    (run 2 104 = Rules.Execute_follower_call);
  Alcotest.(check bool) "kill otherwise" true (run 3 102 = Rules.Kill)

let test_rules_removed () =
  let prog = Rules.allow_removed_syscalls ~removed:[ 72 ] in
  let run leader =
    Rules.verdict_of_action
      (Interp.run prog
         ~data:{ Interp.nr = 0; args = [||] }
         ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] })
        .Interp.action
  in
  Alcotest.(check bool) "fcntl removable" true (run 72 = Rules.Skip_leader_event);
  Alcotest.(check bool) "others kill" true (run 1 = Rules.Kill)

let test_rules_combine () =
  let a = Rules.allow_added_syscalls ~expected_leader:[ 108 ] ~added:[ 102 ] in
  let b = Rules.allow_removed_syscalls ~removed:[ 72 ] in
  let prog = Rules.combine a b in
  let run leader follower =
    Rules.verdict_of_action
      (Interp.run prog
         ~data:{ Interp.nr = follower; args = [||] }
         ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] })
        .Interp.action
  in
  Alcotest.(check bool) "rule a fires" true
    (run 108 102 = Rules.Execute_follower_call);
  Alcotest.(check bool) "rule b fires" true (run 72 999 = Rules.Skip_leader_event);
  Alcotest.(check bool) "both miss" true (run 5 5 = Rules.Kill)

let test_codec_roundtrip_listing1 () =
  let prog = Asm.assemble_exn Rules.listing1 in
  let image = Varan_bpf.Codec.encode_program prog in
  Alcotest.(check int) "8 bytes per insn" (8 * Array.length prog)
    (Bytes.length image);
  match Varan_bpf.Codec.decode_program image with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok prog' ->
    Alcotest.(check bool) "roundtrip" true (prog = prog')

let test_codec_rejects_garbage () =
  (match Varan_bpf.Codec.decode_program (Bytes.make 7 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "odd size accepted");
  match Varan_bpf.Codec.decode_program (Bytes.make 8 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage opcode accepted"

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"sock_filter codec roundtrip" ~count:200
    QCheck.(pair (int_bound 200) (int_bound 200))
    (fun (a, b) ->
      let prog =
        Rules.combine
          (Rules.allow_added_syscalls ~expected_leader:[ a + 1 ] ~added:[ b + 1 ])
          (Rules.allow_removed_syscalls ~removed:[ a + b + 2 ])
      in
      match Varan_bpf.Codec.decode_program (Varan_bpf.Codec.encode_program prog) with
      | Ok prog' -> prog = prog'
      | Error _ -> false)

(* Property: generated addition rules never allow an un-listed call. *)
let prop_added_rules_sound =
  QCheck.Test.make ~name:"addition rules are sound" ~count:300
    QCheck.(triple (int_bound 200) (int_bound 200) (int_bound 1000))
    (fun (leader, follower, salt) ->
      let expected = [ 10 + (salt mod 5); 50 ] in
      let added = [ 100; 101 ] in
      let prog =
        Rules.allow_added_syscalls ~expected_leader:expected ~added
      in
      let out =
        Interp.run prog
          ~data:{ Interp.nr = follower; args = [||] }
          ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] }
      in
      let allowed = out.Interp.action = Bi.ret_allow in
      let should_allow = List.mem leader expected && List.mem follower added in
      allowed = should_allow)

let () =
  Alcotest.run "varan_streams"
    [
      ( "pool",
        [
          Alcotest.test_case "alloc/free" `Quick test_pool_alloc_free;
          Alcotest.test_case "chunk reuse" `Quick test_pool_reuses_chunks;
          Alcotest.test_case "bucket segregation" `Quick
            test_pool_bucket_segregation;
          Alcotest.test_case "double free" `Quick test_pool_double_free_rejected;
          Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
          Alcotest.test_case "oversized" `Quick test_pool_oversized_alloc;
        ] );
      ( "ring",
        [
          Alcotest.test_case "publish/consume" `Quick test_ring_publish_consume;
          Alcotest.test_case "backpressure" `Quick test_ring_backpressure;
          Alcotest.test_case "multiple consumers" `Quick
            test_ring_multiple_consumers_each_get_all;
          Alcotest.test_case "remove consumer" `Quick
            test_ring_remove_consumer_unblocks_producer;
          Alcotest.test_case "lag" `Quick test_ring_lag;
          Alcotest.test_case "try variants" `Quick test_ring_try_variants;
          Alcotest.test_case "try_publish vs stalled consumer" `Quick
            test_ring_try_publish_stalled_consumer;
          Alcotest.test_case "wraparound cursor accounting" `Quick
            test_ring_wraparound_cursor_accounting;
          Alcotest.test_case "event sizing" `Quick test_event_sizing;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "leader/follower ordering" `Quick
            test_lamport_leader_follower;
          Alcotest.test_case "force on promotion" `Quick
            test_lamport_force_on_promotion;
        ] );
      ( "bpf",
        [
          Alcotest.test_case "verifier accepts listing1" `Quick
            test_verifier_accepts_listing1;
          Alcotest.test_case "verifier rejects bad" `Quick
            test_verifier_rejects_empty_and_endless;
          Alcotest.test_case "verifier rejects wild jump" `Quick
            test_verifier_rejects_out_of_range_jump;
          Alcotest.test_case "interp arithmetic" `Quick test_interp_arithmetic;
          Alcotest.test_case "listing1 semantics" `Quick
            test_interp_listing1_semantics;
          Alcotest.test_case "assembler errors" `Quick test_asm_errors;
          Alcotest.test_case "addition rules" `Quick test_rules_added;
          Alcotest.test_case "removal rules" `Quick test_rules_removed;
          Alcotest.test_case "combine rules" `Quick test_rules_combine;
          QCheck_alcotest.to_alcotest prop_added_rules_sound;
          Alcotest.test_case "codec roundtrip listing1" `Quick
            test_codec_roundtrip_listing1;
          Alcotest.test_case "codec rejects garbage" `Quick
            test_codec_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
    ]

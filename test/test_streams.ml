(* Tests for the shared-memory pool, the Disruptor ring buffer, Lamport
   clocks and the BPF engine (verifier, interpreter, assembler, rules). *)

module E = Varan_sim.Engine
module Pool = Varan_shmem.Pool
module Ring = Varan_ringbuf.Ring
module Event = Varan_ringbuf.Event
module Lamport = Varan_vclock.Lamport
module Bi = Varan_bpf.Insn
module Verifier = Varan_bpf.Verifier
module Interp = Varan_bpf.Interp
module Asm = Varan_bpf.Asm
module Rules = Varan_bpf.Rules

(* --- pool ------------------------------------------------------------ *)

let test_pool_alloc_free () =
  let p = Pool.create () in
  let c = Pool.alloc p 100 in
  Alcotest.(check bool) "chunk live" true c.Pool.live;
  Alcotest.(check bool)
    "bucket rounds up to power of two" true
    (Pool.chunk_capacity p c >= 100);
  Pool.write c (Bytes.of_string "hello");
  Alcotest.(check string)
    "roundtrip" "hello"
    (Bytes.to_string (Pool.read c 5));
  Pool.free p c;
  let s = Pool.stats p in
  Alcotest.(check int) "allocs" 1 s.Pool.allocs;
  Alcotest.(check int) "frees" 1 s.Pool.frees;
  Alcotest.(check int) "no live chunks" 0 s.Pool.live_chunks

let test_pool_reuses_chunks () =
  let p = Pool.create () in
  let c1 = Pool.alloc p 64 in
  let addr = c1.Pool.addr in
  Pool.free p c1;
  let c2 = Pool.alloc p 64 in
  Alcotest.(check int) "free list reuse" addr c2.Pool.addr;
  let s = Pool.stats p in
  Alcotest.(check int) "one segment" 1 s.Pool.segments_in_use

let test_pool_bucket_segregation () =
  let p = Pool.create () in
  let small = Pool.alloc p 64 in
  let big = Pool.alloc p 4096 in
  Alcotest.(check bool)
    "separate buckets" true
    (small.Pool.bucket <> big.Pool.bucket);
  let s = Pool.stats p in
  Alcotest.(check int) "two segments" 2 s.Pool.segments_in_use

let test_pool_double_free_rejected () =
  let p = Pool.create () in
  let c = Pool.alloc p 64 in
  Pool.free p c;
  match Pool.free p c with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected double-free rejection"

let test_pool_exhaustion () =
  let p = Pool.create ~pool_bytes:65536 ~segment_bytes:65536 () in
  (* One segment of 64 KiB split into 1 KiB chunks: 64 allocs succeed. *)
  for _ = 1 to 64 do
    ignore (Pool.alloc p 1024)
  done;
  match Pool.alloc p 1024 with
  | exception Pool.Out_of_memory -> ()
  | _ -> Alcotest.fail "expected Out_of_memory"

let test_pool_oversized_alloc () =
  let p = Pool.create () in
  match Pool.alloc p (1 lsl 30) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_pool_read_into () =
  let p = Pool.create () in
  let c = Pool.alloc p 64 in
  Pool.write c (Bytes.of_string "zero-copy");
  Alcotest.(check bool)
    "size covers the payload (zero-alloc length check)" true (Pool.size c >= 9);
  (* Fill a caller-owned buffer; bytes outside the request are untouched. *)
  let dst = Bytes.make 16 '.' in
  let n = Pool.read_into c dst ~len:9 in
  Alcotest.(check int) "copied the request" 9 n;
  Alcotest.(check string) "contents + untouched tail" "zero-copy......."
    (Bytes.to_string dst);
  (* Offset writes land where asked. *)
  let dst = Bytes.make 8 '.' in
  let n = Pool.read_into c ~pos:4 dst ~len:4 in
  Alcotest.(check int) "partial copy" 4 n;
  Alcotest.(check string) "placed at pos" "....zero" (Bytes.to_string dst);
  (* read_into must match read byte for byte. *)
  let via_read = Pool.read c 9 in
  let via_into = Bytes.create 9 in
  ignore (Pool.read_into c via_into ~len:9);
  Alcotest.(check bool) "read_into == read" true (Bytes.equal via_read via_into);
  (* An over-long request is capped at the chunk's capacity, exactly as
     Pool.read caps its result. *)
  let cap = Pool.size c in
  let big = Bytes.create (cap + 32) in
  Alcotest.(check int)
    "capped at capacity" cap
    (Pool.read_into c big ~len:(cap + 32))

let test_pool_view () =
  let p = Pool.create () in
  let c = Pool.alloc p 64 in
  Pool.write c (Bytes.of_string "borrowed");
  let seen =
    Pool.view c ~len:8 (fun data off len -> Bytes.sub_string data off len)
  in
  Alcotest.(check string) "view sees the bytes" "borrowed" seen;
  (* The view is clamped to the chunk's capacity and floored at zero. *)
  Alcotest.(check int)
    "clamped" (Pool.size c)
    (Pool.view c ~len:(Pool.size c + 100) (fun _ _ n -> n));
  Alcotest.(check int) "floored" 0 (Pool.view c ~len:(-3) (fun _ _ n -> n))

(* --- ring ------------------------------------------------------------- *)

let test_ring_publish_consume () =
  let eng = E.create () in
  let r = Ring.create ~size:8 "test" in
  let got = ref [] in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 1 to 20 do
           E.consume 10;
           Ring.publish r i
         done));
  ignore
    (E.spawn eng ~name:"consumer" (fun () ->
         for _ = 1 to 20 do
           got := Ring.consume r cid :: !got
         done));
  E.run eng;
  Alcotest.(check (list int))
    "in order, none lost"
    (List.init 20 (fun i -> i + 1))
    (List.rev !got)

let test_ring_backpressure () =
  (* A slow consumer must stall the producer once the ring fills. *)
  let eng = E.create () in
  let r = Ring.create ~size:4 "bp" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 1 to 12 do
           Ring.publish r i
         done));
  ignore
    (E.spawn eng ~name:"slow-consumer" (fun () ->
         for _ = 1 to 12 do
           E.consume 1_000;
           ignore (Ring.consume r cid)
         done));
  E.run eng;
  let s = Ring.stats r in
  Alcotest.(check bool) "producer stalled" true (s.Ring.producer_stalls > 0);
  Alcotest.(check int) "all consumed" 12 s.Ring.consumes

let test_ring_multiple_consumers_each_get_all () =
  let eng = E.create () in
  let r = Ring.create ~size:16 "multi" in
  let sums = Array.make 3 0 in
  let cids = Array.init 3 (fun _ -> Ring.add_consumer r) in
  Array.iteri
    (fun i cid ->
      ignore
        (E.spawn eng ~name:(Printf.sprintf "consumer%d" i) (fun () ->
             for _ = 1 to 10 do
               sums.(i) <- sums.(i) + Ring.consume r cid
             done)))
    cids;
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for v = 1 to 10 do
           E.consume 5;
           Ring.publish r v
         done));
  E.run eng;
  Array.iteri
    (fun i sum -> Alcotest.(check int) (Printf.sprintf "consumer %d" i) 55 sum)
    sums

let test_ring_remove_consumer_unblocks_producer () =
  let eng = E.create () in
  let r = Ring.create ~size:2 "crash" in
  let dead = Ring.add_consumer r in
  let live = Ring.add_consumer r in
  let produced = ref 0 in
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for i = 1 to 6 do
           Ring.publish r i;
           produced := i
         done));
  ignore
    (E.spawn eng ~name:"live-consumer" (fun () ->
         for _ = 1 to 6 do
           ignore (Ring.consume r live)
         done));
  (* The dead consumer never reads; unsubscribe it shortly after start,
     as the coordinator does when a follower crashes. *)
  ignore
    (E.spawn eng ~name:"coordinator" (fun () ->
         E.consume 100;
         Ring.remove_consumer r dead));
  E.run eng;
  Alcotest.(check int) "producer finished" 6 !produced

let test_ring_lag () =
  let eng = E.create () in
  let r = Ring.create ~size:64 "lag" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         for i = 1 to 10 do
           Ring.publish r i
         done;
         Alcotest.(check int) "lag after 10 publishes" 10 (Ring.lag r cid);
         ignore (Ring.consume r cid);
         ignore (Ring.consume r cid);
         Alcotest.(check int) "lag after 2 consumes" 8 (Ring.lag r cid)));
  E.run eng

let test_ring_try_variants () =
  let eng = E.create () in
  let r = Ring.create ~size:2 "try" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         Alcotest.(check bool) "consume on empty" true (Ring.try_consume r cid = None);
         Alcotest.(check bool) "publish ok" true (Ring.try_publish r 1);
         Alcotest.(check bool) "publish ok" true (Ring.try_publish r 2);
         Alcotest.(check bool) "publish full" false (Ring.try_publish r 3);
         Alcotest.(check bool) "peek" true (Ring.peek r cid = Some 1);
         Alcotest.(check bool) "consume" true (Ring.try_consume r cid = Some 1);
         Alcotest.(check bool) "now room" true (Ring.try_publish r 3)));
  E.run eng

let test_ring_try_publish_stalled_consumer () =
  let eng = E.create () in
  let r = Ring.create ~size:4 "stalled" in
  let stalled = Ring.add_consumer r in
  let live = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         for i = 1 to 4 do
           Alcotest.(check bool) "room" true (Ring.try_publish r i)
         done;
         Alcotest.(check bool) "full" false (Ring.try_publish r 5);
         (* The live consumer drains, but the stalled cursor still pins
            every slot: the publisher must keep failing. *)
         for i = 1 to 4 do
           Alcotest.(check bool) "live reads" true
             (Ring.try_consume r live = Some i)
         done;
         Alcotest.(check bool) "still full" false (Ring.try_publish r 5);
         Alcotest.(check int) "stalled lag" 4 (Ring.lag r stalled);
         Alcotest.(check (list int))
           "unread preserved" [ 1; 2; 3; 4 ] (Ring.unread r stalled);
         (* Removing the stalled consumer frees all its slots at once —
            the publisher wraps the ring twice more without blocking. *)
         Ring.remove_consumer r stalled;
         for i = 5 to 12 do
           Alcotest.(check bool) "room again" true (Ring.try_publish r i);
           Alcotest.(check bool) "live reads on" true
             (Ring.try_consume r live = Some i)
         done;
         Alcotest.(check int) "published" 12 (Ring.published r)));
  E.run eng

let test_ring_wraparound_cursor_accounting () =
  let eng = E.create () in
  let r = Ring.create ~size:4 "wrap" in
  let cid = Ring.add_consumer r in
  ignore
    (E.spawn eng (fun () ->
         (* Two full revolutions with interleaved reads: cursors are
            absolute sequence numbers, not slot indices. *)
         for i = 0 to 7 do
           Alcotest.(check bool) "publish" true (Ring.try_publish r i);
           Alcotest.(check int) "cursor trails head" i (Ring.cursor r cid);
           Alcotest.(check bool) "read back" true
             (Ring.try_consume r cid = Some i)
         done;
         Alcotest.(check int) "cursor caught up" 8 (Ring.cursor r cid);
         Alcotest.(check bool) "empty" true (Ring.try_consume r cid = None)));
  E.run eng

(* --- batched publish/consume ------------------------------------------ *)

module Prng = Varan_util.Prng
module Programs = Varan_torture.Programs
module Oracle = Varan_trace.Oracle

(* Seeded event-stream generator built on the torture suite's op
   generator: each op becomes one stream event whose registers, result
   and inline payload are drawn from the same PRNG, with the oracle's
   clock = seq + 1 convention. *)
let gen_events prng n =
  let ops = Array.of_list (Programs.gen_ops prng n) in
  Array.mapi
    (fun i op ->
      let sysno = Hashtbl.hash op land 0xff in
      let nargs = Prng.int prng 4 in
      let args = Array.init nargs (fun _ -> Prng.int prng 1000) in
      let inline_out =
        if Prng.bool prng then
          Some
            (Bytes.init (1 + Prng.int prng 16) (fun _ ->
                 Char.chr (Prng.int prng 256)))
        else None
      in
      Event.make ~tid:0 ~args ~ret:(Prng.int prng 4096) ?inline_out
        ~clock:(i + 1) sysno)
    ops

(* Run [events] through a fresh ring with [nconsumers] consumers, using
   the given publish and consume strategies; returns what each consumer
   saw plus the oracle's report. *)
let run_stream ~events ~nconsumers ~publisher ~consumer =
  let eng = E.create () in
  let ring = Ring.create ~size:32 "prop" in
  let oracle = Oracle.create () in
  Oracle.attach_ring oracle ~tuple:0 ring;
  let seen = Array.make nconsumers [] in
  let handles = Array.init nconsumers (fun _ -> Ring.subscribe ring) in
  Array.iteri
    (fun i h ->
      ignore
        (E.spawn eng ~name:(Printf.sprintf "consumer%d" i) (fun () ->
             consumer h (Array.length events) (fun e ->
                 seen.(i) <- e :: seen.(i)))))
    handles;
  ignore (E.spawn eng ~name:"producer" (fun () -> publisher ring events));
  E.run eng;
  (Array.map List.rev seen, Oracle.report oracle)

let one_at_a_time_publisher ring events =
  Array.iter
    (fun e ->
      E.consume 3;
      Ring.publish ring e)
    events

let one_at_a_time_consumer h total push =
  for _ = 1 to total do
    push (Ring.consume_h h)
  done

let batched_publisher ~chunk ring events =
  let n = Array.length events in
  let i = ref 0 in
  while !i < n do
    let take = min chunk (n - !i) in
    E.consume 3;
    Ring.publish_batch ring (Array.sub events !i take);
    i := !i + take
  done

let batched_consumer ~max h total push =
  let left = ref total in
  while !left > 0 do
    let batch = Ring.consume_batch_h h ~max in
    List.iter push batch;
    left := !left - List.length batch
  done

(* The tentpole equivalence: batched publish/consume must be
   indistinguishable from the one-at-a-time path — same events in the
   same order at every consumer, and an identical oracle report
   (per-tuple structural digests included) — across 200 seeds. *)
let test_batched_equals_unbatched () =
  for seed = 0 to 199 do
    let prng = Prng.create seed in
    let n = 1 + Prng.int prng 60 in
    let events = gen_events prng n in
    let nconsumers = 1 + Prng.int prng 3 in
    let chunk = 1 + Prng.int prng 8 in
    let max = 1 + Prng.int prng 64 in
    let ref_seen, ref_report =
      run_stream ~events ~nconsumers ~publisher:one_at_a_time_publisher
        ~consumer:one_at_a_time_consumer
    in
    let got_seen, got_report =
      run_stream ~events ~nconsumers
        ~publisher:(batched_publisher ~chunk)
        ~consumer:(batched_consumer ~max)
    in
    if not (Oracle.ok ref_report) then
      Alcotest.failf "seed %d: reference oracle unclean" seed;
    if not (Oracle.ok got_report) then
      Alcotest.failf "seed %d: batched oracle unclean" seed;
    for i = 0 to nconsumers - 1 do
      if ref_seen.(i) <> got_seen.(i) then
        Alcotest.failf "seed %d: consumer %d saw a different sequence" seed i
    done;
    if ref_report.Oracle.digests <> got_report.Oracle.digests then
      Alcotest.failf "seed %d: oracle stream digests differ" seed
  done

let test_batch_wraparound () =
  let eng = E.create () in
  let r = Ring.create ~size:4 "batch-wrap" in
  let c = Ring.subscribe r in
  let got = ref [] in
  (* 3 batches of 10 over a 4-slot ring: every batch spans at least one
     wraparound and is split into gate-limited runs internally. *)
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         for b = 0 to 2 do
           Ring.publish_batch r (Array.init 10 (fun i -> (b * 10) + i))
         done));
  ignore
    (E.spawn eng ~name:"consumer" (fun () ->
         let left = ref 30 in
         while !left > 0 do
           E.consume 7;
           let batch = Ring.consume_batch_h c ~max:3 in
           List.iter (fun v -> got := v :: !got) batch;
           left := !left - List.length batch
         done));
  E.run eng;
  Alcotest.(check (list int))
    "in order across wraps"
    (List.init 30 Fun.id)
    (List.rev !got);
  let s = Ring.stats r in
  Alcotest.(check int) "all published" 30 s.Ring.publishes;
  Alcotest.(check int) "all consumed" 30 s.Ring.consumes

let test_batch_consumer_removed_mid_stream () =
  let eng = E.create () in
  let r = Ring.create ~size:4 "batch-crash" in
  let dead = Ring.subscribe r in
  let live = Ring.subscribe r in
  let got = ref [] in
  (* The dead consumer reads one batch and stops; its cursor pins the
     ring until the coordinator removes it, after which the batched
     publisher must finish all 12 events for the live consumer. *)
  ignore
    (E.spawn eng ~name:"dead" (fun () ->
         ignore (Ring.consume_batch_h dead ~max:2)));
  ignore
    (E.spawn eng ~name:"live" (fun () ->
         let left = ref 12 in
         while !left > 0 do
           E.consume 5;
           let batch = Ring.consume_batch_h live ~max:4 in
           List.iter (fun v -> got := v :: !got) batch;
           left := !left - List.length batch
         done));
  ignore
    (E.spawn eng ~name:"producer" (fun () ->
         Ring.publish_batch r (Array.init 12 Fun.id)));
  ignore
    (E.spawn eng ~name:"coordinator" (fun () ->
         E.consume 1_000;
         Ring.unsubscribe dead));
  E.run eng;
  Alcotest.(check (list int))
    "live consumer got everything"
    (List.init 12 Fun.id)
    (List.rev !got);
  Alcotest.(check int) "only the live consumer remains" 1
    (Ring.active_consumers r)

let test_uncontended_ring_takes_no_wakeups () =
  let eng = E.create () in
  let r = Ring.create ~size:16 "quiet" in
  let c = Ring.subscribe r in
  (* A strictly alternating publish/consume in one task never parks, so
     the targeted-wakeup policy must never pay a broadcast. *)
  ignore
    (E.spawn eng (fun () ->
         for i = 1 to 50 do
           Ring.publish r i;
           Alcotest.(check (option int)) "read back" (Some i)
             (Ring.try_consume_h c)
         done));
  E.run eng;
  let s = Ring.stats r in
  Alcotest.(check int) "no publish wakeups" 0 s.Ring.publish_wakeups;
  Alcotest.(check int) "no consume wakeups" 0 s.Ring.consume_wakeups;
  Alcotest.(check int) "no stalls" 0
    (s.Ring.producer_stalls + s.Ring.consumer_stalls)

(* --- events ----------------------------------------------------------- *)

let test_event_sizing () =
  Alcotest.(check int) "cache line" 64 Event.event_bytes;
  let e = Event.make ~clock:1 ~args:[| 1; 2; 3 |] 42 in
  Alcotest.(check bool) "fits inline" true (Event.fits_inline e);
  match Event.make ~clock:1 ~args:(Array.make 7 0) 42 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "seven args must be rejected"

(* Expect test for the failure-dump rendering: tid, register args, the
   escaped inline payload and the grant marker must all be visible. *)
let test_event_pp_full_dump () =
  let e =
    Event.make ~tid:3 ~args:[| 1; 2 |] ~ret:7
      ~inline_out:(Bytes.of_string "hi\001") ~clock:5 42
  in
  Alcotest.(check string)
    "syscall with inline payload"
    "[syscall nr=42 tid=3 clk=5 args=(1,2) ret=7 out=\"hi\\x01\"(3B)]"
    (Format.asprintf "%a" Event.pp e);
  let long =
    Event.make ~tid:1 ~ret:20
      ~inline_out:(Bytes.of_string "aaaaaaaaaaaaaaaaaaaa") ~clock:9 0
  in
  Alcotest.(check string)
    "long payloads are previewed"
    "[syscall nr=0 tid=1 clk=9 ret=20 out=\"aaaaaaaaaaaaaaaa..\"(20B)]"
    (Format.asprintf "%a" Event.pp long);
  let g = Event.make ~kind:Event.Ev_fork ~tid:2 ~args:[| 4 |] ~ret:99
      ~grant:(Obj.repr 17) ~clock:3 57
  in
  Alcotest.(check string)
    "fork with grant marker"
    "[fork nr=57 tid=2 clk=3 args=(4) ret=99 grant]"
    (Format.asprintf "%a" Event.pp g)

(* --- lamport ----------------------------------------------------------- *)

let test_lamport_leader_follower () =
  let leader = Lamport.create () in
  let follower = Lamport.create () in
  let s1 = Lamport.tick leader in
  let s2 = Lamport.tick leader in
  Alcotest.(check (list int)) "timestamps" [ 1; 2 ] [ s1; s2 ];
  (* Follower must take s1 before s2. *)
  Alcotest.(check bool) "s2 too early" false (Lamport.try_advance follower s2);
  Alcotest.(check bool) "s1 ok" true (Lamport.try_advance follower s1);
  Alcotest.(check bool) "s2 now ok" true (Lamport.try_advance follower s2);
  Alcotest.(check bool) "replay rejected" false (Lamport.try_advance follower s2)

let test_lamport_force_on_promotion () =
  let c = Lamport.create () in
  Lamport.force c 41;
  Alcotest.(check int) "adopted position" 42 (Lamport.tick c)

(* --- bpf --------------------------------------------------------------- *)

let test_verifier_accepts_listing1 () =
  match Asm.assemble Rules.listing1 with
  | Ok prog -> (
    match Verifier.verify prog with
    | Ok () -> ()
    | Error m -> Alcotest.failf "verifier rejected listing1: %s" m)
  | Error m -> Alcotest.failf "assembly failed: %s" m

let test_verifier_rejects_empty_and_endless () =
  (match Verifier.verify [||] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty accepted");
  match Verifier.verify [| Bi.Ld_imm 1 |] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "no-ret accepted"

let test_verifier_rejects_out_of_range_jump () =
  let prog = [| Bi.Jeq (1, 5, 0); Bi.Ret_k 0 |] in
  match Verifier.verify prog with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "out-of-range jump accepted"

let test_interp_arithmetic () =
  let prog =
    [| Bi.Ld_imm 40; Bi.Ldx_imm 2; Bi.Alu_add Bi.X; Bi.Ret_a |]
  in
  let out =
    Interp.run prog ~data:{ Interp.nr = 0; args = [||] } ~event:Interp.no_event
  in
  Alcotest.(check int) "40+2" 42 out.Interp.action;
  Alcotest.(check int) "steps" 4 out.Interp.steps

let test_interp_listing1_semantics () =
  let prog = Asm.assemble_exn Rules.listing1 in
  let run ~leader_nr ~follower_nr =
    (Interp.run prog
       ~data:{ Interp.nr = follower_nr; args = [||] }
       ~event:{ Interp.ev_nr = leader_nr; ev_ret = 0; ev_args = [||] })
      .Interp.action
  in
  (* Leader at getegid (108), follower inserting getuid (102): allowed. *)
  Alcotest.(check int) "getuid insertion" Bi.ret_allow
    (run ~leader_nr:108 ~follower_nr:102);
  (* Leader at open (2), follower inserting getgid (104): allowed. *)
  Alcotest.(check int) "getgid insertion" Bi.ret_allow
    (run ~leader_nr:2 ~follower_nr:104);
  (* Unknown leader event: killed. *)
  Alcotest.(check int) "unknown divergence" Bi.ret_kill
    (run ~leader_nr:1 ~follower_nr:102);
  (* The published filter falls through from the getegid check into the
     open check, so leader=getegid with follower=getgid is also allowed —
     the paper notes one could write a tighter filter using more context. *)
  Alcotest.(check int) "fall-through of the published filter" Bi.ret_allow
    (run ~leader_nr:108 ~follower_nr:104);
  Alcotest.(check int) "genuinely wrong follower call" Bi.ret_kill
    (run ~leader_nr:108 ~follower_nr:7)

let test_asm_errors () =
  (match Asm.assemble "frobnicate #1\nret #0" with
  | Error m ->
    Alcotest.(check bool) "line number" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "unknown mnemonic accepted");
  match Asm.assemble "start: jmp start\nret #0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "backward jump accepted"

let test_rules_added () =
  let prog =
    Rules.allow_added_syscalls ~expected_leader:[ 108; 2 ] ~added:[ 102; 104 ]
  in
  let run leader follower =
    Rules.verdict_of_action
      (Interp.run prog
         ~data:{ Interp.nr = follower; args = [||] }
         ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] })
        .Interp.action
  in
  Alcotest.(check bool) "insertion ok" true
    (run 108 102 = Rules.Execute_follower_call);
  Alcotest.(check bool) "insertion ok 2" true
    (run 2 104 = Rules.Execute_follower_call);
  Alcotest.(check bool) "kill otherwise" true (run 3 102 = Rules.Kill)

let test_rules_removed () =
  let prog = Rules.allow_removed_syscalls ~removed:[ 72 ] in
  let run leader =
    Rules.verdict_of_action
      (Interp.run prog
         ~data:{ Interp.nr = 0; args = [||] }
         ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] })
        .Interp.action
  in
  Alcotest.(check bool) "fcntl removable" true (run 72 = Rules.Skip_leader_event);
  Alcotest.(check bool) "others kill" true (run 1 = Rules.Kill)

let test_rules_combine () =
  let a = Rules.allow_added_syscalls ~expected_leader:[ 108 ] ~added:[ 102 ] in
  let b = Rules.allow_removed_syscalls ~removed:[ 72 ] in
  let prog = Rules.combine a b in
  let run leader follower =
    Rules.verdict_of_action
      (Interp.run prog
         ~data:{ Interp.nr = follower; args = [||] }
         ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] })
        .Interp.action
  in
  Alcotest.(check bool) "rule a fires" true
    (run 108 102 = Rules.Execute_follower_call);
  Alcotest.(check bool) "rule b fires" true (run 72 999 = Rules.Skip_leader_event);
  Alcotest.(check bool) "both miss" true (run 5 5 = Rules.Kill)

let test_codec_roundtrip_listing1 () =
  let prog = Asm.assemble_exn Rules.listing1 in
  let image = Varan_bpf.Codec.encode_program prog in
  Alcotest.(check int) "8 bytes per insn" (8 * Array.length prog)
    (Bytes.length image);
  match Varan_bpf.Codec.decode_program image with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok prog' ->
    Alcotest.(check bool) "roundtrip" true (prog = prog')

let test_codec_rejects_garbage () =
  (match Varan_bpf.Codec.decode_program (Bytes.make 7 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "odd size accepted");
  match Varan_bpf.Codec.decode_program (Bytes.make 8 '\xff') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage opcode accepted"

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"sock_filter codec roundtrip" ~count:200
    QCheck.(pair (int_bound 200) (int_bound 200))
    (fun (a, b) ->
      let prog =
        Rules.combine
          (Rules.allow_added_syscalls ~expected_leader:[ a + 1 ] ~added:[ b + 1 ])
          (Rules.allow_removed_syscalls ~removed:[ a + b + 2 ])
      in
      match Varan_bpf.Codec.decode_program (Varan_bpf.Codec.encode_program prog) with
      | Ok prog' -> prog = prog'
      | Error _ -> false)

(* --- bpf compiler ------------------------------------------------------ *)

(* Random programs that pass the verifier by construction: straight-line
   loads/ALU ops with forward-only in-range jumps, ending in Ret. *)
let gen_verified_program prng =
  let n = 2 + Prng.int prng 30 in
  Array.init n (fun i ->
      let room = n - i - 2 in
      (* insns after pc+1 a jump may skip *)
      if i = n - 1 then
        if Prng.bool prng then Bi.Ret_a else Bi.Ret_k (Prng.int prng 4096)
      else begin
        let src () = if Prng.bool prng then Bi.K (Prng.int prng 64) else Bi.X in
        let jump mk =
          let t = if room > 0 then Prng.int prng (room + 1) else 0 in
          let f = if room > 0 then Prng.int prng (room + 1) else 0 in
          mk (Prng.int prng 256, t, f)
        in
        match Prng.int prng 15 with
        | 0 -> Bi.Ld_imm (Prng.int prng 4096)
        | 1 ->
          (* nr, a valid arg offset, or garbage the decoder zero-fills *)
          Bi.Ld_abs (Prng.choose prng [| 0; 16; 24; 32; 21; 7 |])
        | 2 -> Bi.Ld_event (Prng.int prng 10)
        | 3 -> Bi.Ldx_imm (Prng.int prng 4096)
        | 4 -> Bi.Tax
        | 5 -> Bi.Txa
        | 6 -> Bi.Alu_add (src ())
        | 7 -> Bi.Alu_sub (src ())
        | 8 -> Bi.Alu_mul (src ())
        | 9 -> Bi.Alu_and (src ())
        | 10 -> Bi.Alu_or (src ())
        | 11 -> Bi.Alu_lsh (Bi.K (Prng.int prng 8))
        | 12 -> Bi.Alu_rsh (Bi.K (Prng.int prng 8))
        | 13 -> jump (fun (k, t, f) -> Bi.Jeq (k, t, f))
        | _ -> (
          match Prng.int prng 4 with
          | 0 -> jump (fun (k, t, f) -> Bi.Jgt (k, t, f))
          | 1 -> jump (fun (k, t, f) -> Bi.Jge (k, t, f))
          | 2 -> jump (fun (k, t, f) -> Bi.Jset (k, t, f))
          | _ -> Bi.Ja (if room > 0 then Prng.int prng (room + 1) else 0))
      end)

let gen_interp_inputs prng =
  let data =
    {
      Interp.nr = Prng.int prng 256;
      args = Array.init (Prng.int prng 7) (fun _ -> Prng.int prng 10_000);
    }
  in
  let event =
    {
      Interp.ev_nr = Prng.int prng 256;
      ev_ret = Prng.int prng 10_000 - 5000;
      ev_args = Array.init (Prng.int prng 7) (fun _ -> Prng.int prng 10_000);
    }
  in
  (data, event)

(* The compiled closure is the reference interpreter exactly: same
   action, same step count, over random verified programs (plus the
   generated rewrite rules) and random inputs — 200 seeds. *)
let test_compile_matches_interp () =
  for seed = 0 to 199 do
    let prng = Prng.create (0x5eed + seed) in
    let progs =
      [
        gen_verified_program prng;
        gen_verified_program prng;
        Rules.combine
          (Rules.allow_added_syscalls
             ~expected_leader:[ 1 + Prng.int prng 200 ]
             ~added:[ 1 + Prng.int prng 200 ])
          (Rules.allow_removed_syscalls ~removed:[ 1 + Prng.int prng 200 ]);
      ]
    in
    List.iter
      (fun prog ->
        (match Verifier.verify prog with
        | Ok () -> ()
        | Error m -> Alcotest.failf "seed %d: generator broke: %s" seed m);
        let compiled = Interp.compile prog in
        for _ = 1 to 5 do
          let data, event = gen_interp_inputs prng in
          let reference = Interp.run prog ~data ~event in
          let got = Interp.run_compiled compiled ~data ~event in
          if got.Interp.action <> reference.Interp.action then
            Alcotest.failf "seed %d: action %d <> %d" seed got.Interp.action
              reference.Interp.action;
          if got.Interp.steps <> reference.Interp.steps then
            Alcotest.failf "seed %d: steps %d <> %d" seed got.Interp.steps
              reference.Interp.steps
        done)
      progs
  done

let test_compile_rejects_unverified () =
  match Sys.opaque_identity (Interp.compile [| Bi.Ld_imm 1 |]) with
  | exception Interp.Not_verified _ -> ()
  | (_ : Interp.ctx -> Interp.outcome) ->
    Alcotest.fail "expected Not_verified"

(* Property: generated addition rules never allow an un-listed call. *)
let prop_added_rules_sound =
  QCheck.Test.make ~name:"addition rules are sound" ~count:300
    QCheck.(triple (int_bound 200) (int_bound 200) (int_bound 1000))
    (fun (leader, follower, salt) ->
      let expected = [ 10 + (salt mod 5); 50 ] in
      let added = [ 100; 101 ] in
      let prog =
        Rules.allow_added_syscalls ~expected_leader:expected ~added
      in
      let out =
        Interp.run prog
          ~data:{ Interp.nr = follower; args = [||] }
          ~event:{ Interp.ev_nr = leader; ev_ret = 0; ev_args = [||] }
      in
      let allowed = out.Interp.action = Bi.ret_allow in
      let should_allow = List.mem leader expected && List.mem follower added in
      allowed = should_allow)

let () =
  Alcotest.run "varan_streams"
    [
      ( "pool",
        [
          Alcotest.test_case "alloc/free" `Quick test_pool_alloc_free;
          Alcotest.test_case "chunk reuse" `Quick test_pool_reuses_chunks;
          Alcotest.test_case "bucket segregation" `Quick
            test_pool_bucket_segregation;
          Alcotest.test_case "double free" `Quick test_pool_double_free_rejected;
          Alcotest.test_case "exhaustion" `Quick test_pool_exhaustion;
          Alcotest.test_case "oversized" `Quick test_pool_oversized_alloc;
          Alcotest.test_case "read_into" `Quick test_pool_read_into;
          Alcotest.test_case "view" `Quick test_pool_view;
        ] );
      ( "ring",
        [
          Alcotest.test_case "publish/consume" `Quick test_ring_publish_consume;
          Alcotest.test_case "backpressure" `Quick test_ring_backpressure;
          Alcotest.test_case "multiple consumers" `Quick
            test_ring_multiple_consumers_each_get_all;
          Alcotest.test_case "remove consumer" `Quick
            test_ring_remove_consumer_unblocks_producer;
          Alcotest.test_case "lag" `Quick test_ring_lag;
          Alcotest.test_case "try variants" `Quick test_ring_try_variants;
          Alcotest.test_case "try_publish vs stalled consumer" `Quick
            test_ring_try_publish_stalled_consumer;
          Alcotest.test_case "wraparound cursor accounting" `Quick
            test_ring_wraparound_cursor_accounting;
          Alcotest.test_case "event sizing" `Quick test_event_sizing;
          Alcotest.test_case "event pp full dump" `Quick
            test_event_pp_full_dump;
        ] );
      ( "batch",
        [
          Alcotest.test_case "batched == unbatched (200 seeds)" `Quick
            test_batched_equals_unbatched;
          Alcotest.test_case "batch wraparound" `Quick test_batch_wraparound;
          Alcotest.test_case "consumer removed mid-stream" `Quick
            test_batch_consumer_removed_mid_stream;
          Alcotest.test_case "uncontended ring takes no wakeups" `Quick
            test_uncontended_ring_takes_no_wakeups;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "leader/follower ordering" `Quick
            test_lamport_leader_follower;
          Alcotest.test_case "force on promotion" `Quick
            test_lamport_force_on_promotion;
        ] );
      ( "bpf",
        [
          Alcotest.test_case "verifier accepts listing1" `Quick
            test_verifier_accepts_listing1;
          Alcotest.test_case "verifier rejects bad" `Quick
            test_verifier_rejects_empty_and_endless;
          Alcotest.test_case "verifier rejects wild jump" `Quick
            test_verifier_rejects_out_of_range_jump;
          Alcotest.test_case "interp arithmetic" `Quick test_interp_arithmetic;
          Alcotest.test_case "listing1 semantics" `Quick
            test_interp_listing1_semantics;
          Alcotest.test_case "assembler errors" `Quick test_asm_errors;
          Alcotest.test_case "addition rules" `Quick test_rules_added;
          Alcotest.test_case "removal rules" `Quick test_rules_removed;
          Alcotest.test_case "combine rules" `Quick test_rules_combine;
          QCheck_alcotest.to_alcotest prop_added_rules_sound;
          Alcotest.test_case "compile == interp (200 seeds)" `Quick
            test_compile_matches_interp;
          Alcotest.test_case "compile rejects unverified" `Quick
            test_compile_rejects_unverified;
          Alcotest.test_case "codec roundtrip listing1" `Quick
            test_codec_roundtrip_listing1;
          Alcotest.test_case "codec rejects garbage" `Quick
            test_codec_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
    ]

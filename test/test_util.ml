(* Tests for the utility layer: PRNG determinism and distribution, the
   statistics helpers, table rendering, the byte queue and the framed
   message protocol. *)

module Prng = Varan_util.Prng
module Stats = Varan_util.Stats
module Tablefmt = Varan_util.Tablefmt
module Bytequeue = Varan_kernel.Bytequeue

(* --- prng ------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_prng_split_independent () =
  let g = Prng.create 7 in
  let g1 = Prng.split g in
  let g2 = Prng.split g in
  Alcotest.(check bool) "split streams differ" false
    (Prng.next_int64 g1 = Prng.next_int64 g2)

let prop_prng_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:500
    QCheck.(pair (int_bound 10_000) (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"Prng.int_in inclusive range" ~count:500
    QCheck.(triple (int_bound 10_000) (int_range (-50) 50) (int_bound 100))
    (fun (seed, lo, span) ->
      let g = Prng.create seed in
      let hi = lo + span in
      let v = Prng.int_in g lo hi in
      v >= lo && v <= hi)

let test_prng_shuffle_permutation () =
  let g = Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- stats ------------------------------------------------------------ *)

let test_stats_basics () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "median odd" 2.0 (Stats.median [ 1.0; 2.0; 7.0 ]);
  let lo, hi = Stats.min_max xs in
  Alcotest.(check (float 1e-9)) "min" 1.0 lo;
  Alcotest.(check (float 1e-9)) "max" 4.0 hi

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile 95.0 xs);
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100 is max" 100.0 (Stats.percentile 100.0 xs)

let prop_stats_summary_consistent =
  QCheck.Test.make ~name:"summary min<=median<=max" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.median
      && s.Stats.median <= s.Stats.max
      && s.Stats.min <= s.Stats.mean +. 1e-9
      && s.Stats.mean <= s.Stats.max +. 1e-9
      && s.Stats.p99 <= s.Stats.p999
      && s.Stats.p999 <= s.Stats.max
      && s.Stats.n = List.length xs)

let test_stats_tail_percentiles () =
  (* On 1..10000 the tail order is strict and p999 sits in the last
     handful of samples — the open-loop benches live on this field. *)
  let xs = List.init 10_000 (fun i -> float_of_int (i + 1)) in
  let s = Stats.summarize xs in
  Alcotest.(check bool) "p95 < p99 < p999 < max" true
    (s.Stats.p95 < s.Stats.p99 && s.Stats.p99 < s.Stats.p999
   && s.Stats.p999 <= s.Stats.max);
  Alcotest.(check bool) "p999 in the top 0.2%" true (s.Stats.p999 >= 9_980.0);
  (* List and array summaries agree; the array input is left untouched. *)
  let a = Array.of_list xs in
  let shuffled = Array.copy a in
  let tmp = shuffled.(0) in
  shuffled.(0) <- shuffled.(9999);
  shuffled.(9999) <- tmp;
  let sa = Stats.summarize_array shuffled in
  Alcotest.(check (float 1e-9)) "array p999 agrees" s.Stats.p999 sa.Stats.p999;
  Alcotest.(check (float 1e-9)) "shuffled input untouched" 10_000.0 shuffled.(0);
  (* The rendered summary advertises the new field. *)
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary prints p999" true
    (contains ~sub:"p999=" (Stats.summary_to_string s))

let test_stats_tiny_samples () =
  (* n=1: every statistic collapses to the sample. *)
  let s1 = Stats.summarize [ 42.0 ] in
  Alcotest.(check int) "n=1 n" 1 s1.Stats.n;
  Alcotest.(check (float 1e-9)) "n=1 mean" 42.0 s1.Stats.mean;
  Alcotest.(check (float 1e-9)) "n=1 median" 42.0 s1.Stats.median;
  Alcotest.(check (float 1e-9)) "n=1 p999" 42.0 s1.Stats.p999;
  Alcotest.(check (float 1e-9)) "n=1 min" 42.0 s1.Stats.min;
  Alcotest.(check (float 1e-9)) "n=1 max" 42.0 s1.Stats.max;
  Alcotest.(check (float 1e-9)) "n=1 percentile 50" 42.0
    (Stats.percentile 50.0 [ 42.0 ]);
  (* n=2: median averages, the tail percentiles sit on the larger
     sample (nearest-rank never interpolates past the data). *)
  let s2 = Stats.summarize [ 10.0; 20.0 ] in
  Alcotest.(check (float 1e-9)) "n=2 median" 15.0 s2.Stats.median;
  Alcotest.(check (float 1e-9)) "n=2 p95" 20.0 s2.Stats.p95;
  Alcotest.(check (float 1e-9)) "n=2 p999" 20.0 s2.Stats.p999;
  Alcotest.(check (float 1e-9)) "n=2 min" 10.0 s2.Stats.min;
  (* p999 on a tiny sample set equals the max, never an extrapolation. *)
  let xs = [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (float 1e-9)) "tiny p999 = max" 3.0
    (Stats.percentile 99.9 xs);
  Alcotest.(check (float 1e-9)) "tiny summarize p999 = max" 3.0
    (Stats.summarize xs).Stats.p999

let test_summarize_array_non_mutation () =
  (* summarize_array sorts a copy: the caller's array must come back
     byte-identical even when thoroughly unsorted. *)
  let a = [| 5.0; 1.0; 4.0; 2.0; 3.0; 0.5; 9.0 |] in
  let before = Array.copy a in
  let s = Stats.summarize_array a in
  Alcotest.(check (array (float 1e-9))) "input untouched" before a;
  Alcotest.(check (float 1e-9)) "median over the sorted copy" 3.0
    s.Stats.median

let test_scoped_counters () =
  Alcotest.(check string) "unscoped name unchanged" "lifecycle.respawns"
    (Stats.scoped_name "lifecycle.respawns");
  Alcotest.(check string) "scope prefixes" "shard3.lifecycle.respawns"
    (Stats.scoped_name ~scope:"shard3" "lifecycle.respawns");
  let a = Stats.scoped_counter ~scope:"s0" "test.scoped" in
  let b = Stats.scoped_counter ~scope:"s1" "test.scoped" in
  let before_a = Stats.counter_value a in
  let before_b = Stats.counter_value b in
  Stats.incr_counter a;
  Stats.incr_counter a;
  Stats.incr_counter b;
  Alcotest.(check int) "scopes tally apart (s0)" (before_a + 2)
    (Stats.counter_value a);
  Alcotest.(check int) "scopes tally apart (s1)" (before_b + 1)
    (Stats.counter_value b);
  Alcotest.(check string) "scoped counter name" "s0.test.scoped"
    (Stats.counter_name a)

(* --- floatbuf --------------------------------------------------------- *)

module Floatbuf = Varan_util.Floatbuf

let test_floatbuf_grows_in_order () =
  let b = Floatbuf.create ~capacity:4 () in
  Alcotest.(check bool) "fresh is empty" true (Floatbuf.is_empty b);
  Alcotest.(check bool) "no summary when empty" true
    (Floatbuf.summary b = None);
  for i = 0 to 9_999 do
    Floatbuf.push b (float_of_int i)
  done;
  Alcotest.(check int) "length counts pushes" 10_000 (Floatbuf.length b);
  Alcotest.(check (float 1e-9)) "get is positional" 1_234.0
    (Floatbuf.get b 1_234);
  (* Insertion order survives growth; to_list and to_array agree. *)
  let l = Floatbuf.to_list b in
  Alcotest.(check int) "to_list length" 10_000 (List.length l);
  Alcotest.(check (float 1e-9)) "list head" 0.0 (List.hd l);
  Alcotest.(check (float 1e-9)) "array tail" 9_999.0 ((Floatbuf.to_array b).(9_999));
  (match Floatbuf.summary b with
  | None -> Alcotest.fail "summary lost the samples"
  | Some s ->
    Alcotest.(check int) "summary n" 10_000 s.Stats.n;
    Alcotest.(check (float 1e-9)) "summary max" 9_999.0 s.Stats.max);
  Floatbuf.clear b;
  Alcotest.(check int) "clear empties" 0 (Floatbuf.length b)

let test_floatbuf_capacity_doubling () =
  (* Push across the growth boundary of a deliberately tiny buffer and
     check every element: growth must copy the old prefix, not lose or
     reorder it. *)
  let b = Floatbuf.create ~capacity:2 () in
  for i = 0 to 4 do
    Floatbuf.push b (float_of_int (i * 10))
  done;
  Alcotest.(check int) "length across two doublings" 5 (Floatbuf.length b);
  for i = 0 to 4 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "element %d survives growth" i)
      (float_of_int (i * 10))
      (Floatbuf.get b i)
  done;
  Alcotest.(check (array (float 1e-9))) "to_array in push order"
    [| 0.0; 10.0; 20.0; 30.0; 40.0 |]
    (Floatbuf.to_array b)

(* --- histograms -------------------------------------------------------- *)

let test_hist_buckets_and_percentiles () =
  let h = Stats.make_hist "t.lat" in
  Alcotest.(check int) "empty count" 0 (Stats.hist_count h);
  Alcotest.(check bool) "empty summary" true (Stats.hist_summary h = None);
  (* Bucket geometry: sub-1 values underflow to bucket 0; bounds are
     half-open and tile the axis. *)
  Alcotest.(check int) "underflow bucket" 0 (Stats.bucket_of_value 0.25);
  let b = Stats.bucket_of_value 100.0 in
  let lo, hi = Stats.bucket_bounds b in
  Alcotest.(check bool) "value inside its bucket bounds" true
    (lo <= 100.0 && 100.0 < hi);
  Alcotest.(check bool) "bucket index in range" true
    (b >= 0 && b < Stats.hist_buckets);
  (* Record a known spread; log-bucket estimates are coarse (~26%), so
     assert relative error rather than equality. *)
  for i = 1 to 1000 do
    Stats.hist_record h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Stats.hist_count h);
  let p50 = Stats.hist_percentile h 50.0 in
  Alcotest.(check bool) "p50 within bucket resolution" true
    (p50 > 350.0 && p50 < 700.0);
  let p999 = Stats.hist_percentile h 99.9 in
  Alcotest.(check bool) "p999 clamped to observed max" true (p999 <= 1000.0);
  (match Stats.hist_summary h with
  | None -> Alcotest.fail "summary empty after 1000 records"
  | Some s ->
    Alcotest.(check int) "summary n" 1000 s.Stats.n;
    Alcotest.(check (float 1e-6)) "exact mean survives bucketing" 500.5
      s.Stats.mean;
    Alcotest.(check (float 1e-9)) "exact min" 1.0 s.Stats.min;
    Alcotest.(check (float 1e-9)) "exact max" 1000.0 s.Stats.max);
  Stats.hist_clear h;
  Alcotest.(check int) "clear zeroes count" 0 (Stats.hist_count h)

let test_registry_hygiene () =
  Stats.clear_registry ();
  let c0 = Stats.scoped_counter ~scope:"caseA" "events" in
  let _c1 = Stats.scoped_counter ~scope:"caseB" "events" in
  let _h0 = Stats.hist ~scope:"caseA" "lat" in
  let _h1 = Stats.hist ~scope:"caseB" "lat" in
  Stats.incr_counter c0;
  Alcotest.(check int) "two counters registered" 2
    (List.length (Stats.counters ()));
  Alcotest.(check int) "two hists registered" 2
    (List.length (Stats.hists ()));
  (* remove_scope drops exactly the prefix-matched registrations. *)
  Stats.remove_scope "caseA";
  Alcotest.(check (list string)) "caseA gone, caseB stays"
    [ "caseB.events" ]
    (List.map fst (Stats.counters ()));
  Alcotest.(check (list string)) "caseA hist gone"
    [ "caseB.lat" ]
    (List.map fst (Stats.hists ()));
  (* An existing handle still works after its registration is dropped —
     it is just no longer visible to dump_json. *)
  Stats.incr_counter c0;
  Alcotest.(check int) "orphan handle still tallies" 2
    (Stats.counter_value c0);
  (* Re-requesting the name creates a fresh counter from zero. *)
  let c0' = Stats.scoped_counter ~scope:"caseA" "events" in
  Alcotest.(check int) "re-created counter starts fresh" 0
    (Stats.counter_value c0');
  Stats.clear_registry ();
  Alcotest.(check int) "clear_registry empties counters" 0
    (List.length (Stats.counters ()));
  Alcotest.(check int) "clear_registry empties hists" 0
    (List.length (Stats.hists ()))

let test_dump_json_well_formed () =
  Stats.clear_registry ();
  let c = Stats.counter "a.count" in
  Stats.add_counter c 3;
  let h = Stats.hist "a.lat\"quoted\"" in
  Stats.hist_record h 12.5;
  let s = Stats.dump_json () in
  (* Must parse as JSON — handed to CI and external tools verbatim. We
     have no JSON parser in-tree; check the shape instead: balanced
     braces/brackets outside strings and the escaped name present. *)
  let depth = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun ch ->
      if !esc then esc := false
      else if !in_str then begin
        if ch = '\\' then esc := true else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    s;
  Alcotest.(check int) "balanced nesting" 0 !depth;
  Alcotest.(check bool) "string state closed" false !in_str;
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter present" true (contains ~sub:"a.count" s);
  Alcotest.(check bool) "quote in hist name escaped" true
    (contains ~sub:"a.lat\\\"quoted\\\"" s);
  Stats.clear_registry ()

(* --- tablefmt ---------------------------------------------------------- *)

let test_table_renders_aligned () =
  let t =
    Tablefmt.create ~title:"T"
      [ ("name", Tablefmt.Left); ("value", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_rule t;
  Tablefmt.add_row t [ "b"; "1234567" ];
  let s = Tablefmt.render t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "has title" true (List.hd lines = "T");
  (* All non-empty lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" || l = "T" then None else Some (String.length l))
      lines
  in
  let all_eq = List.for_all (fun w -> w = List.hd widths) widths in
  Alcotest.(check bool) "aligned" true all_eq

let test_table_short_rows_padded () =
  let t = Tablefmt.create [ ("a", Tablefmt.Left); ("b", Tablefmt.Left) ] in
  Tablefmt.add_row t [ "only" ];
  Alcotest.(check bool) "renders" true (String.length (Tablefmt.render t) > 0)

let test_table_too_many_cells () =
  let t = Tablefmt.create [ ("a", Tablefmt.Left) ] in
  match Tablefmt.add_row t [ "x"; "y" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_ratio_pct () =
  Alcotest.(check string) "ratio" "1.52x" (Tablefmt.ratio 1.52);
  Alcotest.(check string) "pct" "11.3%" (Tablefmt.pct 0.113)

(* --- bytequeue ---------------------------------------------------------- *)

let test_bytequeue_fifo () =
  let q = Bytequeue.create () in
  ignore (Bytequeue.write q (Bytes.of_string "hello "));
  ignore (Bytequeue.write q (Bytes.of_string "world"));
  Alcotest.(check string) "reads across chunks" "hello world"
    (Bytes.to_string (Bytequeue.read q 11));
  Alcotest.(check bool) "empty after" true (Bytequeue.is_empty q)

let test_bytequeue_partial_reads () =
  let q = Bytequeue.create () in
  ignore (Bytequeue.write q (Bytes.of_string "abcdef"));
  Alcotest.(check string) "first" "ab" (Bytes.to_string (Bytequeue.read q 2));
  Alcotest.(check string) "second" "cd" (Bytes.to_string (Bytequeue.read q 2));
  Alcotest.(check string) "rest" "ef" (Bytes.to_string (Bytequeue.read q 10))

let test_bytequeue_capacity () =
  let q = Bytequeue.create ~capacity:4 () in
  let accepted = Bytequeue.write q (Bytes.of_string "abcdef") in
  Alcotest.(check int) "clipped to capacity" 4 accepted;
  Alcotest.(check int) "no space" 0 (Bytequeue.space q);
  ignore (Bytequeue.read q 2);
  Alcotest.(check int) "space reclaimed" 2 (Bytequeue.space q)

let test_bytequeue_peek () =
  let q = Bytequeue.create () in
  ignore (Bytequeue.write q (Bytes.of_string "xyz"));
  Alcotest.(check string) "peek" "xy" (Bytes.to_string (Bytequeue.peek q 2));
  Alcotest.(check int) "peek does not consume" 3 (Bytequeue.length q)

let prop_bytequeue_roundtrip =
  QCheck.Test.make ~name:"bytequeue write/read roundtrip" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 20) (string_of_size Gen.(int_range 0 64)))
    (fun chunks ->
      let q = Bytequeue.create ~capacity:(1 lsl 20) () in
      List.iter (fun c -> ignore (Bytequeue.write q (Bytes.of_string c))) chunks;
      let total = List.fold_left (fun n c -> n + String.length c) 0 chunks in
      let out = Bytequeue.read q total in
      Bytes.to_string out = String.concat "" chunks)

(* --- syscall tables -------------------------------------------------------- *)

module Sysno = Varan_syscall.Sysno
module Errno = Varan_syscall.Errno

let test_sysno_roundtrips () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Sysno.name s ^ " number roundtrip")
        true
        (Sysno.of_int (Sysno.to_int s) = Some s);
      Alcotest.(check bool)
        (Sysno.name s ^ " name roundtrip")
        true
        (Sysno.of_name (Sysno.name s) = Some s))
    Sysno.all;
  Alcotest.(check bool) "at least 86 syscalls, like the prototype" true
    (List.length Sysno.all >= 86);
  Alcotest.(check bool) "unknown number" true (Sysno.of_int 9999 = None)

let test_sysno_numbers_unique () =
  let nums = List.map Sysno.to_int Sysno.all in
  let sorted = List.sort_uniq compare nums in
  Alcotest.(check int) "no duplicate numbers" (List.length nums)
    (List.length sorted)

let test_sysno_classes_consistent () =
  (* The transfer classes drive the monitor; spot-check the key ones. *)
  let open Sysno in
  Alcotest.(check bool) "read is out-buffer" true
    (transfer_class Read = Out_buffer);
  Alcotest.(check bool) "write is in-buffer" true
    (transfer_class Write = In_buffer);
  Alcotest.(check bool) "open creates fds" true (transfer_class Open = New_fd);
  Alcotest.(check bool) "time is virtual" true (transfer_class Time = Vdso);
  Alcotest.(check bool) "mmap is local" true
    (transfer_class Mmap = Process_local);
  Alcotest.(check bool) "read blocks" true (is_blocking Read);
  Alcotest.(check bool) "write does not block" false (is_blocking Write)

let test_errno_roundtrips () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Errno.name e ^ " roundtrip")
        true
        (Errno.of_int (Errno.to_int e) = Some e))
    [ Errno.EPERM; Errno.ENOENT; Errno.EBADF; Errno.EAGAIN; Errno.EPIPE;
      Errno.ECONNREFUSED; Errno.ERESTARTSYS ];
  Alcotest.(check int) "ERESTARTSYS is the kernel's 512" 512
    (Errno.to_int Errno.ERESTARTSYS)

(* --- engine stress ---------------------------------------------------------- *)

module E2 = Varan_sim.Engine

(* Random mixes of consume/sleep/yield across many tasks: the engine's
   global time must equal the longest task's local time, and every task
   must complete. *)
let prop_engine_time_is_max =
  QCheck.Test.make ~name:"engine time = max task time" ~count:200
    QCheck.(pair (int_bound 100_000) (int_range 1 20))
    (fun (seed, ntasks) ->
      let rng = Varan_util.Prng.create seed in
      let eng = E2.create () in
      let expected = Array.make ntasks 0 in
      for i = 0 to ntasks - 1 do
        let steps =
          List.init (1 + Varan_util.Prng.int rng 10) (fun _ ->
              (Varan_util.Prng.int rng 3, Varan_util.Prng.int rng 1000))
        in
        expected.(i) <-
          List.fold_left
            (fun acc (kind, n) -> if kind = 2 then acc else acc + n)
            0 steps;
        ignore
          (E2.spawn eng (fun () ->
               List.iter
                 (fun (kind, n) ->
                   match kind with
                   | 0 -> E2.consume n
                   | 1 -> E2.sleep n
                   | _ -> E2.yield ())
                 steps))
      done;
      E2.run eng;
      E2.now eng = Int64.of_int (Array.fold_left max 0 expected))

(* --- proto --------------------------------------------------------------- *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Proto = Varan_workloads.Proto

let test_proto_roundtrip_over_socket () =
  let eng = E.create () in
  let k = K.create eng in
  let got = ref [] in
  let sproc = K.new_proc k "s" and cproc = K.new_proc k "c" in
  ignore
    (E.spawn eng ~name:"server" (fun () ->
         let api = Api.direct k sproc in
         let ok = Result.get_ok in
         let lfd = ok (Api.socket api) in
         ok (Api.bind api lfd 9999);
         ok (Api.listen api lfd);
         let c = ok (Api.accept api lfd) in
         let rec loop () =
           match Proto.recv_msg api c with
           | Ok (Some m) ->
             got := Bytes.to_string m :: !got;
             loop ()
           | _ -> ()
         in
         loop ()));
  ignore
    (E.spawn eng ~name:"client" (fun () ->
         let api = Api.direct k cproc in
         let ok = Result.get_ok in
         E.consume 1000;
         let fd = ok (Api.socket api) in
         ok (Api.connect api fd 9999);
         ok (Proto.send_msg api fd Bytes.empty);
         ok (Proto.send_str api fd "one");
         ok (Proto.send_msg api fd (Bytes.make 5000 'x'));
         ignore (Api.close api fd)));
  E.run_until_quiescent eng;
  match List.rev !got with
  | [ a; b; c ] ->
    Alcotest.(check int) "empty frame" 0 (String.length a);
    Alcotest.(check string) "small frame" "one" b;
    Alcotest.(check int) "big frame" 5000 (String.length c)
  | l -> Alcotest.failf "expected 3 frames, got %d" (List.length l)

let () =
  Alcotest.run "varan_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick
            test_prng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prop_prng_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_prng_int_in_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "tail percentiles (p999)" `Quick
            test_stats_tail_percentiles;
          Alcotest.test_case "tiny samples (n=1, n=2)" `Quick
            test_stats_tiny_samples;
          Alcotest.test_case "summarize_array non-mutation" `Quick
            test_summarize_array_non_mutation;
          Alcotest.test_case "scoped counters" `Quick test_scoped_counters;
          Alcotest.test_case "floatbuf grows in order" `Quick
            test_floatbuf_grows_in_order;
          Alcotest.test_case "floatbuf capacity doubling" `Quick
            test_floatbuf_capacity_doubling;
          QCheck_alcotest.to_alcotest prop_stats_summary_consistent;
        ] );
      ( "hist",
        [
          Alcotest.test_case "buckets and percentiles" `Quick
            test_hist_buckets_and_percentiles;
          Alcotest.test_case "registry hygiene" `Quick test_registry_hygiene;
          Alcotest.test_case "dump_json well-formed" `Quick
            test_dump_json_well_formed;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "aligned" `Quick test_table_renders_aligned;
          Alcotest.test_case "short rows" `Quick test_table_short_rows_padded;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "ratio/pct" `Quick test_ratio_pct;
        ] );
      ( "bytequeue",
        [
          Alcotest.test_case "fifo" `Quick test_bytequeue_fifo;
          Alcotest.test_case "partial reads" `Quick test_bytequeue_partial_reads;
          Alcotest.test_case "capacity" `Quick test_bytequeue_capacity;
          Alcotest.test_case "peek" `Quick test_bytequeue_peek;
          QCheck_alcotest.to_alcotest prop_bytequeue_roundtrip;
        ] );
      ( "syscall-tables",
        [
          Alcotest.test_case "sysno roundtrips" `Quick test_sysno_roundtrips;
          Alcotest.test_case "sysno numbers unique" `Quick
            test_sysno_numbers_unique;
          Alcotest.test_case "transfer classes" `Quick
            test_sysno_classes_consistent;
          Alcotest.test_case "errno roundtrips" `Quick test_errno_roundtrips;
        ] );
      ( "engine-stress",
        [ QCheck_alcotest.to_alcotest prop_engine_time_is_max ] );
      ( "proto",
        [
          Alcotest.test_case "roundtrip over socket" `Quick
            test_proto_roundtrip_over_socket;
        ] );
    ]

(* Tests for the workload layer: the benchmark servers and clients, the
   measurement driver, the lockstep baseline, the revision variants, the
   record-replay clients and the SPEC kernels. *)

module E = Varan_sim.Engine
module K = Varan_kernel.Kernel
module Api = Varan_kernel.Api
module Nvx = Varan_nvx.Session
module Config = Varan_nvx.Config
module Variant = Varan_nvx.Variant
module Lockstep = Varan_nvx.Lockstep
module RR = Varan_nvx.Record_replay
module Workload = Varan_workloads.Workload
module Catalog = Varan_workloads.Catalog
module Clients = Varan_workloads.Clients
module Driver = Varan_workloads.Driver
module Revisions = Varan_workloads.Revisions
module Spec = Varan_workloads.Spec
module Kv_server = Varan_workloads.Kv_server
module Proto = Varan_workloads.Proto

(* Small copies of the catalog loads so tests stay fast. *)
let shrink ?(conns = 4) ?(reqs = 12) w =
  {
    w with
    Workload.load =
      {
        w.Workload.load with
        Clients.connections = conns;
        requests_per_conn = reqs;
        warmup_requests = 0;
      };
  }

(* The servers count the catalog's connection totals; shrink those too. *)
let tiny_redis =
  let port = 7500 in
  {
    Workload.w_name = "tiny-redis";
    units = 1;
    unit_kind = Variant.Thread;
    make_body =
      (fun () ->
        Kv_server.make_body
          {
            Kv_server.port;
            units = 1;
            aof_path = None;
            work_cycles = 5_000;
            expected_conns = 4;
            crash_on_hmget = false;
          }
          ());
    profile = Variant.default_profile;
    mem_intensity_c1000 = 50;
    port_base = port;
    load =
      {
        Clients.connections = 4;
        requests_per_conn = 12;
        request_of =
          (fun ~conn ~seq ->
            if seq mod 2 = 0 then
              Kv_server.cmd (Printf.sprintf "SET k%d-%d v" conn seq)
            else Kv_server.cmd (Printf.sprintf "GET k%d-%d" conn (seq - 1)));
        think_cycles = 200;
        warmup_requests = 0;
      };
    setup_fs = (fun k -> Varan_kernel.Vfs.add_file k "/var/.keep" "");
    rules = None;
  }

(* --- servers end-to-end ------------------------------------------------ *)

let test_driver_native_serves_all () =
  let m = Driver.run tiny_redis Driver.Native in
  Alcotest.(check int) "all requests served" 48 m.Driver.requests;
  Alcotest.(check int) "no errors" 0 m.Driver.errors;
  Alcotest.(check bool) "throughput positive" true (m.Driver.throughput_rps > 0.)

let test_driver_nvx_serves_all () =
  let m =
    Driver.run tiny_redis
      (Driver.Nvx { followers = 2; config = Config.default })
  in
  Alcotest.(check int) "all requests served" 48 m.Driver.requests;
  Alcotest.(check int) "no errors" 0 m.Driver.errors

let test_driver_overhead_ordering () =
  (* NVX with more followers can't be faster; lockstep is slower than
     both on an I/O-heavy server. *)
  let native = Driver.run tiny_redis Driver.Native in
  let nvx1 =
    Driver.run tiny_redis (Driver.Nvx { followers = 1; config = Config.default })
  in
  let ls = Driver.run tiny_redis (Driver.Lockstep { versions = 2 }) in
  let ov_nvx = Driver.overhead ~baseline:native nvx1 in
  let ov_ls = Driver.overhead ~baseline:native ls in
  Alcotest.(check bool)
    (Printf.sprintf "nvx >= 1 (%.3f)" ov_nvx)
    true (ov_nvx >= 0.99);
  Alcotest.(check bool)
    (Printf.sprintf "lockstep (%.3f) > nvx (%.3f)" ov_ls ov_nvx)
    true
    (ov_ls > ov_nvx)

let test_all_catalog_servers_run_natively () =
  List.iter
    (fun w ->
      let w = shrink w in
      let m = Driver.run w Driver.Native in
      Alcotest.(check bool)
        (w.Workload.w_name ^ " served requests")
        true
        (m.Driver.requests > 0 && m.Driver.errors = 0))
    (Catalog.c10k_servers @ Catalog.prior_work_servers)

let test_all_catalog_servers_run_under_nvx () =
  List.iter
    (fun w ->
      let w = shrink w in
      let m =
        Driver.run w (Driver.Nvx { followers = 1; config = Config.default })
      in
      Alcotest.(check bool)
        (w.Workload.w_name ^ " served under NVX")
        true
        (m.Driver.requests > 0 && m.Driver.errors = 0))
    (Catalog.c10k_servers @ Catalog.prior_work_servers)

(* --- lockstep ----------------------------------------------------------- *)

let test_lockstep_correctness () =
  (* Two variants in lockstep produce exactly one kernel execution per
     rendezvous: the file written by the workload holds one copy. *)
  let eng = E.create () in
  let k = K.create eng in
  Varan_kernel.Vfs.add_file k "/var/.keep" "";
  let body _i api =
    let ok = Result.get_ok in
    let fd =
      ok (Api.openf api "/var/out" Varan_kernel.Flags.(o_wronly lor o_creat))
    in
    ignore (ok (Api.write_str api fd "once"));
    ignore (ok (Api.close api fd))
  in
  let mk name i = Variant.make name (Variant.single (body i)) in
  let t = Lockstep.launch k [ mk "a" 0; mk "b" 1 ] in
  E.run_until_quiescent eng;
  Alcotest.(check (option string))
    "single execution" (Some "once")
    (Varan_kernel.Vfs.read_file k "/var/out");
  let st = Lockstep.stats t in
  Alcotest.(check int) "no divergences" 0 st.Lockstep.divergences;
  Alcotest.(check bool) "rendezvous happened" true (st.Lockstep.rendezvous > 0);
  Alcotest.(check int) "same syscall counts" st.Lockstep.per_variant_syscalls.(0)
    st.Lockstep.per_variant_syscalls.(1)

let test_lockstep_divergence_fatal () =
  let eng = E.create () in
  let k = K.create eng in
  let body_a api = ignore (Api.getuid api) in
  let body_b api = ignore (Api.getgid api) in
  let t =
    Lockstep.launch k
      [
        Variant.make "a" (Variant.single body_a);
        Variant.make "b" (Variant.single body_b);
      ]
  in
  E.run_until_quiescent eng;
  let st = Lockstep.stats t in
  Alcotest.(check bool) "divergence detected" true (st.Lockstep.divergences > 0)

let test_ptrace_model_analytic_sanity () =
  (* The closed-form model must predict multiples on a syscall-dense
     request and near-nothing on a compute-heavy one. *)
  let c = Varan_cycles.Cost.default in
  let dense =
    Varan_nvx.Ptrace_model.estimated_server_overhead c
      ~syscalls_per_request:6 ~avg_payload_bytes:256 ~request_cycles:12_000
  in
  let compute_bound =
    Varan_nvx.Ptrace_model.estimated_server_overhead c
      ~syscalls_per_request:6 ~avg_payload_bytes:256
      ~request_cycles:10_000_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "dense request suffers (%.2f)" dense)
    true (dense > 3.0);
  Alcotest.(check bool)
    (Printf.sprintf "compute-bound barely notices (%.4f)" compute_bound)
    true
    (compute_bound < 1.02)

(* --- revisions ----------------------------------------------------------- *)

let run_revision_pair leader follower =
  let eng = E.create () in
  let k = K.create eng in
  Revisions.setup_fs k;
  let port = 7600 in
  let variants =
    [
      Revisions.lighttpd_variant ~rev:leader ~port ~expected_conns:1;
      Revisions.lighttpd_variant ~rev:follower ~port ~expected_conns:1;
    ]
  in
  let session = Nvx.launch k variants in
  let served = ref 0 in
  let cproc = K.new_proc k "c" in
  let tid =
    E.spawn eng (fun () ->
        let api = Api.direct k cproc in
        let ok = Result.get_ok in
        let fd = ok (Api.socket api) in
        let rec conn () =
          match Api.connect api fd port with
          | Ok () -> ()
          | Error _ ->
            E.sleep 5_000;
            conn ()
        in
        conn ();
        for _ = 1 to 3 do
          ok (Proto.send_msg api fd (Bytes.of_string "GET /www/index.html"));
          match Proto.recv_msg api fd with
          | Ok (Some _) -> incr served
          | _ -> ()
        done;
        ignore (Api.close api fd))
  in
  K.register_task k cproc tid;
  E.run_until_quiescent eng;
  (!served, Nvx.crashes session, Nvx.is_alive session 1)

let test_revision_pairs_coexist () =
  List.iter
    (fun (l, f, name) ->
      let served, crashes, follower_alive = run_revision_pair l f in
      Alcotest.(check int) (name ^ ": all served") 3 served;
      Alcotest.(check int) (name ^ ": no crash") 0 (List.length crashes);
      Alcotest.(check bool) (name ^ ": follower alive") true follower_alive)
    [
      (Revisions.R2435, Revisions.R2436, "2435/2436");
      (Revisions.R2523, Revisions.R2524, "2523/2524");
      (Revisions.R2577, Revisions.R2578, "2577/2578");
      (Revisions.R2578, Revisions.R2577, "reversed 2578/2577");
    ]

let test_revision_divergence_without_rules_fatal () =
  let strip_rules (v : Variant.t) = { v with Variant.rules = None } in
  let eng = E.create () in
  let k = K.create eng in
  Revisions.setup_fs k;
  let port = 7610 in
  let variants =
    [
      Revisions.lighttpd_variant ~rev:Revisions.R2435 ~port ~expected_conns:1;
      strip_rules
        (Revisions.lighttpd_variant ~rev:Revisions.R2436 ~port
           ~expected_conns:1);
    ]
  in
  let session = Nvx.launch k variants in
  (* No client needed: the startup prologue already diverges. *)
  E.run_until_quiescent eng;
  Alcotest.(check bool) "follower killed" false (Nvx.is_alive session 1)

(* --- record-replay -------------------------------------------------------- *)

let test_record_then_replay_roundtrip () =
  let eng = E.create () in
  let k = K.create eng in
  Varan_kernel.Vfs.add_file k "/var/.keep" "";
  let observed = Array.make 3 "" in
  let program slot api =
    let ok = Result.get_ok in
    let fd = ok (Api.openf api "/dev/urandom" Varan_kernel.Flags.o_rdonly) in
    let b = ok (Api.read api fd 12) in
    ignore (ok (Api.close api fd));
    observed.(slot) <- Bytes.to_string b
  in
  let session =
    Nvx.launch k [ Variant.make "orig" (Variant.single (program 0)) ]
  in
  let recorder = RR.record session k ~tuple:0 ~path:"/var/log.bin" in
  E.run_until_quiescent eng;
  ignore (E.spawn eng (fun () -> RR.stop recorder));
  E.run_until_quiescent eng;
  Alcotest.(check bool) "events recorded" true (RR.recorded_events recorder > 0);
  (* Replay on a different machine with different entropy. *)
  let eng2 = E.create () in
  let k2 = K.create ~seed:777 eng2 in
  (match Varan_kernel.Vfs.read_file k "/var/log.bin" with
  | Some log -> Varan_kernel.Vfs.add_file k2 "/var/log.bin" log
  | None -> Alcotest.fail "log missing");
  let rp =
    RR.replay k2 ~path:"/var/log.bin"
      [
        Variant.make "ra" (Variant.single (program 1));
        Variant.make "rb" (Variant.single (program 2));
      ]
  in
  E.run_until_quiescent eng2;
  Alcotest.(check int) "no replay crashes" 0 (List.length (RR.replay_crashes rp));
  Alcotest.(check string) "replay a faithful" observed.(0) observed.(1);
  Alcotest.(check string) "replay b faithful" observed.(0) observed.(2)

let test_replay_divergent_version_detected () =
  let eng = E.create () in
  let k = K.create eng in
  Varan_kernel.Vfs.add_file k "/var/.keep" "";
  let recorded api =
    let ok = Result.get_ok in
    let fd = ok (Api.openf api "/dev/null" 0) in
    ignore (ok (Api.close api fd))
  in
  let divergent api = ignore (Api.getuid api) in
  let session =
    Nvx.launch k [ Variant.make "orig" (Variant.single recorded) ]
  in
  let recorder = RR.record session k ~tuple:0 ~path:"/var/log2.bin" in
  E.run_until_quiescent eng;
  ignore (E.spawn eng (fun () -> RR.stop recorder));
  E.run_until_quiescent eng;
  let rp =
    RR.replay k ~path:"/var/log2.bin"
      [ Variant.make "bad" (Variant.single divergent) ]
  in
  E.run_until_quiescent eng;
  Alcotest.(check int) "divergence reported" 1
    (List.length (RR.replay_crashes rp))

let test_scribe_slower_than_native () =
  let native = Driver.run tiny_redis Driver.Native in
  let scribe = Driver.run tiny_redis Driver.Scribe in
  Alcotest.(check bool) "scribe adds overhead" true
    (Driver.overhead ~baseline:native scribe > 1.05)

(* --- spec ------------------------------------------------------------------ *)

let test_spec_kernels_run () =
  let p = List.hd Spec.cpu2000 in
  let small = { p with Spec.compute_mcycles = 2 } in
  let ov0 = Driver.run_spec small ~followers:0 in
  let ov2 = Driver.run_spec small ~followers:2 in
  Alcotest.(check bool)
    (Printf.sprintf "interception cheap (%.3f)" ov0)
    true
    (ov0 < 1.1);
  Alcotest.(check bool)
    (Printf.sprintf "contention grows (%.3f >= %.3f)" ov2 ov0)
    true (ov2 >= ov0)

let test_spec_memory_intensity_ordering () =
  (* mcf (memory-bound) must degrade more than crafty (cache-resident). *)
  let find name l = List.find (fun p -> p.Spec.sp_name = name) l in
  let small p = { p with Spec.compute_mcycles = 2 } in
  let mcf = Driver.run_spec (small (find "181.mcf" Spec.cpu2000)) ~followers:4 in
  let crafty =
    Driver.run_spec (small (find "186.crafty" Spec.cpu2000)) ~followers:4
  in
  Alcotest.(check bool)
    (Printf.sprintf "mcf (%.2f) > crafty (%.2f)" mcf crafty)
    true (mcf > crafty)

(* ---- sharded serving under open-loop load --------------------------- *)

module Serving = Varan_workloads.Serving
module Router = Varan_nvx.Router
module Stats = Varan_util.Stats

(* Small enough to stay quick, large enough that every shard sees
   traffic and the percentile fields have a real tail to describe. *)
let tiny_serving ?(shards = 1) () =
  {
    Serving.default with
    Serving.sv_shards = shards;
    sv_requests = 600;
    sv_clients = 10_000;
    sv_workers = 24;
    sv_warmup = 50;
  }

let test_open_loop_accounting () =
  let spec = tiny_serving () in
  let o = Serving.run ~label:"test-open-loop" spec in
  let r = o.Serving.o_result in
  Alcotest.(check int) "no errors" 0 r.Clients.errors;
  Alcotest.(check int) "every post-warmup arrival completed"
    (spec.Serving.sv_requests - spec.Serving.sv_warmup)
    r.Clients.completed;
  Alcotest.(check int) "one latency sample per counted reply"
    r.Clients.completed (Clients.latency_count r);
  (match Clients.latency_summary r with
  | None -> Alcotest.fail "no latency summary despite completions"
  | Some s ->
    Alcotest.(check bool) "open-loop tail ordered: p50<=p99<=p999" true
      (s.Stats.median <= s.Stats.p99 && s.Stats.p99 <= s.Stats.p999));
  (* The whole schedule — arrivals, routing, service — is deterministic
     in the spec seed. *)
  let o2 = Serving.run ~label:"test-open-loop-again" spec in
  Alcotest.(check int) "deterministic completions" r.Clients.completed
    o2.Serving.o_result.Clients.completed;
  Alcotest.(check bool) "deterministic latencies" true
    (Clients.latencies_us r = Clients.latencies_us o2.Serving.o_result)

let test_sharded_pool_shares_spawn () =
  let spec = tiny_serving ~shards:2 () in
  let o = Serving.run ~label:"test-sharded" spec in
  Alcotest.(check int) "no errors" 0 o.Serving.o_result.Clients.errors;
  Alcotest.(check bool) "no shard degraded" true (o.Serving.o_degraded = []);
  (* shards * (followers + 1) spawns, all through the one shared zygote,
     with exactly one cold rewrite — the rest rebase the cached image. *)
  Alcotest.(check int) "one zygote served every spawn" 4
    o.Serving.o_zygote_forks;
  let rc = o.Serving.o_rewrite_cache in
  Alcotest.(check int) "one cold rewrite for the pool" 1
    rc.Varan_binary.Rewrite_cache.misses;
  Alcotest.(check int) "siblings rebase the cached image" 3
    rc.Varan_binary.Rewrite_cache.rebases;
  let rs = o.Serving.o_router in
  Array.iteri
    (fun i n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d took connections" i)
        true (n > 0))
    rs.Router.per_shard

let () =
  Alcotest.run "varan_workloads"
    [
      ( "serving",
        [
          Alcotest.test_case "open-loop latency accounting" `Quick
            test_open_loop_accounting;
          Alcotest.test_case "sharded pool shares the spawn hub" `Quick
            test_sharded_pool_shares_spawn;
        ] );
      ( "driver",
        [
          Alcotest.test_case "native serves all" `Quick
            test_driver_native_serves_all;
          Alcotest.test_case "nvx serves all" `Quick test_driver_nvx_serves_all;
          Alcotest.test_case "overhead ordering" `Quick
            test_driver_overhead_ordering;
          Alcotest.test_case "catalog servers native" `Slow
            test_all_catalog_servers_run_natively;
          Alcotest.test_case "catalog servers nvx" `Slow
            test_all_catalog_servers_run_under_nvx;
        ] );
      ( "lockstep",
        [
          Alcotest.test_case "correctness" `Quick test_lockstep_correctness;
          Alcotest.test_case "divergence fatal" `Quick
            test_lockstep_divergence_fatal;
          Alcotest.test_case "ptrace model analytic sanity" `Quick
            test_ptrace_model_analytic_sanity;
        ] );
      ( "revisions",
        [
          Alcotest.test_case "pairs coexist" `Quick test_revision_pairs_coexist;
          Alcotest.test_case "no rules fatal" `Quick
            test_revision_divergence_without_rules_fatal;
        ] );
      ( "record-replay",
        [
          Alcotest.test_case "record then replay" `Quick
            test_record_then_replay_roundtrip;
          Alcotest.test_case "divergent version detected" `Quick
            test_replay_divergent_version_detected;
          Alcotest.test_case "scribe slower" `Quick test_scribe_slower_than_native;
        ] );
      ( "spec",
        [
          Alcotest.test_case "kernels run" `Quick test_spec_kernels_run;
          Alcotest.test_case "memory intensity ordering" `Quick
            test_spec_memory_intensity_ordering;
        ] );
    ]
